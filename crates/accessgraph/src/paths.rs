//! Components of a branching and relative alignment matrices.
//!
//! Inside one connected component of the chosen branching, every
//! allocation matrix is determined by the component root's matrix:
//! following the tree edges, `M_v = M_root · R_v` where `R_v` is the
//! product of the weight matrices along the root→v path (`R_root = Id`).
//! This is the paper's observation that alignment matrices are fixed *up
//! to left-multiplication by a unimodular matrix* per component (§2.3
//! remark) — later exploited to rotate broadcasts onto grid axes and to
//! massage dataflow matrices into decomposable similarity classes.

use crate::branching::Branching;
use crate::graph::{AccessGraph, EdgeId, Vertex};
use rescomm_intlin::IMat;
use rescomm_loopnest::LoopNest;
use std::collections::HashMap;

/// One connected component of the branching forest.
#[derive(Debug, Clone)]
pub struct Component {
    /// The root vertex (no incoming branching edge).
    pub root: Vertex,
    /// All member vertices, root first, in BFS order.
    pub members: Vec<Vertex>,
    /// `R_v` per member: `M_v = M_root · R_v` (`R_root = Id`).
    pub rel: HashMap<Vertex, IMat>,
    /// The branching edges inside this component.
    pub edges: Vec<EdgeId>,
}

impl Component {
    /// Dimension of the root vertex (column count of `M_root`).
    pub fn root_dim(&self) -> usize {
        self.rel[&self.root].rows()
    }

    /// `true` iff the vertex belongs to this component.
    pub fn contains(&self, v: Vertex) -> bool {
        self.rel.contains_key(&v)
    }
}

/// Split the branching into its connected components and compute the
/// relative matrices along the tree paths.
pub fn component_structure(
    graph: &AccessGraph,
    branching: &Branching,
    nest: &LoopNest,
) -> Vec<Component> {
    let n = graph.vertices.len();
    // Dense child/parent tables indexed by vertex index (O(1) via the
    // arrays-then-statements layout), replacing per-vertex HashMaps.
    let mut has_parent = vec![false; n];
    let mut children: Vec<Vec<(Vertex, EdgeId)>> = vec![Vec::new(); n];
    for &eid in &branching.edges {
        let e = &graph.edges[eid.0];
        let ti = graph.vertex_index(e.to);
        assert!(!has_parent[ti], "branching has in-degree > 1 at {:?}", e.to);
        has_parent[ti] = true;
        children[graph.vertex_index(e.from)].push((e.to, eid));
    }
    // Vertex dimension hint from the first incident edge (one pass over
    // all edges instead of one scan per root): for `u → v`, `W` is
    // `dim(u) × dim(v)`.
    let mut dim_hint: Vec<Option<usize>> = vec![None; n];
    for e in &graph.edges {
        let fi = graph.vertex_index(e.from);
        if dim_hint[fi].is_none() {
            dim_hint[fi] = Some(e.weight.rows());
        }
        let ti = graph.vertex_index(e.to);
        if dim_hint[ti].is_none() {
            dim_hint[ti] = Some(e.weight.cols());
        }
    }

    let mut comps = Vec::new();
    for &v in &graph.vertices {
        if has_parent[graph.vertex_index(v)] {
            continue; // not a root
        }
        // BFS from the root.
        let root = v;
        let mut members = vec![root];
        let mut rel: HashMap<Vertex, IMat> = HashMap::new();
        let mut edges = Vec::new();
        // R_root = identity of the root's dimension, derived from any
        // incident weight matrix; fall back to the vertex dimension for
        // isolated vertices.
        let root_dim =
            dim_hint[graph.vertex_index(root)].unwrap_or_else(|| graph.vertex_dim(nest, root));
        rel.insert(root, IMat::identity(root_dim));
        let mut queue = vec![root];
        while let Some(u) = queue.pop() {
            for &(child, eid) in &children[graph.vertex_index(u)] {
                let w = &graph.edges[eid.0].weight;
                let r = &rel[&u] * w;
                rel.insert(child, r);
                members.push(child);
                edges.push(eid);
                queue.push(child);
            }
        }
        comps.push(Component {
            root,
            members,
            rel,
            edges,
        });
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branching::maximum_branching;
    use crate::graph::AccessGraph;
    use rescomm_loopnest::examples;

    #[test]
    fn motivating_example_single_component() {
        let (nest, _) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        let comps = component_structure(&g, &b, &nest);
        assert_eq!(comps.len(), 1, "all six vertices align into one tree");
        let c = &comps[0];
        assert_eq!(c.members.len(), 6);
        assert_eq!(c.edges.len(), 5);
        // Root relative matrix is the identity.
        assert!(c.rel[&c.root].is_identity());
    }

    #[test]
    fn relative_matrices_compose_edge_weights() {
        let (nest, _) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        let comps = component_structure(&g, &b, &nest);
        let c = &comps[0];
        // Every branching edge u→v must satisfy R_v = R_u · W.
        for &eid in &c.edges {
            let e = &g.edges[eid.0];
            assert_eq!(c.rel[&e.to], &c.rel[&e.from] * &e.weight);
        }
    }

    #[test]
    fn relative_matrices_have_full_row_rank() {
        // Lemma 1 chain: all R_v keep rank = root_dim, so any full-rank
        // seed M_root yields full-rank allocations.
        let (nest, _) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        let comps = component_structure(&g, &b, &nest);
        let c = &comps[0];
        for (v, r) in &c.rel {
            assert_eq!(r.rank(), c.root_dim(), "R for {v:?} lost rank: {r:?}");
        }
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        use rescomm_loopnest::{Domain, NestBuilder};
        let mut bld = NestBuilder::new("iso");
        let _x = bld.array("x", 2);
        let _y = bld.array("y", 2);
        let _s = bld.statement("S", 2, Domain::cube(2, 4));
        let nest = bld.build().unwrap();
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        let comps = component_structure(&g, &b, &nest);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.members.len() == 1));
    }

    #[test]
    fn matmul_components() {
        let nest = examples::matmul(4);
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        let comps = component_structure(&g, &b, &nest);
        // One edge chosen: one 2-vertex component + two singletons.
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = comps.iter().map(|c| c.members.len()).collect();
            v.sort();
            v
        };
        assert_eq!(sizes, vec![1, 1, 2]);
    }
}
