//! Property tests for the machine simulators: scheduling invariants that
//! must hold whatever the message set.

use proptest::prelude::*;
use rescomm_machine::{
    par_fault_sweep, par_recovery_sweep, replication_seed, simulate_phases_batch, trace_phase,
    CachedFaultPhase, CachedPhase, CheckpointPolicy, CompiledFaultPlan, CostModel, FatTree,
    FaultPlan, FaultReport, FaultSim, LinkOutage, Mesh2D, NodeDeath, NodeOutage, OverlapOrder,
    PMsg, PhaseSim, RetryPolicy, ScheduleMode, SchedulePolicy,
};

/// Every schedule policy the fault engines dispatch over — indexed so
/// proptest can draw one without a float strategy.
fn policy(idx: u32) -> SchedulePolicy {
    match idx % 4 {
        0 => SchedulePolicy::Fixed(ScheduleMode::Phased),
        1 => SchedulePolicy::Fixed(ScheduleMode::overlapped()),
        2 => SchedulePolicy::Fixed(ScheduleMode::Overlapped(OverlapOrder::LongestFirst)),
        _ => SchedulePolicy::Adaptive {
            inflation_threshold: 1.2,
        },
    }
}

fn msgs(n_nodes: usize) -> impl Strategy<Value = Vec<PMsg>> {
    proptest::collection::vec((0..n_nodes, 0..n_nodes, 1u64..512), 0..24).prop_map(|v| {
        v.into_iter()
            .map(|(s, d, b)| PMsg {
                src: s,
                dst: d,
                bytes: b,
            })
            .collect()
    })
}

/// Arbitrary fault plans for an 8×4 mesh (104 directed links, 32 nodes).
/// The shim has no float strategies, so probabilities are drawn as
/// integer percentages.
fn plans() -> impl Strategy<Value = FaultPlan> {
    (
        (0u64..1_000_000, 0u32..101, 0u32..101),
        proptest::collection::vec((0usize..104, 0u64..200_000, 1u64..400_000), 0..4),
        proptest::collection::vec((0usize..32, 0u64..200_000, 1u64..400_000), 0..3),
        (1u64..100_000, 1u32..4, 1u32..8),
    )
        .prop_map(
            |((seed, drop, dup), links, nodes, (timeout, backoff, max_attempts))| FaultPlan {
                seed,
                drop_prob: f64::from(drop) / 100.0,
                dup_prob: f64::from(dup) / 100.0,
                link_outages: links
                    .into_iter()
                    .map(|(link, from, dur)| LinkOutage {
                        link,
                        from,
                        until: from + dur,
                    })
                    .collect(),
                node_outages: nodes
                    .into_iter()
                    .map(|(node, from, dur)| NodeOutage {
                        node,
                        from,
                        until: from + dur,
                    })
                    .collect(),
                retry: RetryPolicy {
                    enabled: true,
                    timeout,
                    backoff,
                    max_attempts,
                },
                ..FaultPlan::none()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Makespan ≥ the contention-free lower bound (the longest single
    /// message), and 0 only for empty/local-only phases.
    #[test]
    fn mesh_makespan_bounds(ms in msgs(32)) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let t = mesh.simulate_phase(&ms);
        let lb = ms
            .iter()
            .filter(|m| m.src != m.dst)
            .map(|m| mesh.cost.p2p(mesh.hops(m.src, m.dst), m.bytes))
            .max()
            .unwrap_or(0);
        prop_assert!(t >= lb);
        // Upper bound: full serialization of everything.
        let ub: u64 = ms
            .iter()
            .filter(|m| m.src != m.dst)
            .map(|m| mesh.cost.p2p(mesh.hops(m.src, m.dst), m.bytes))
            .sum();
        prop_assert!(t <= ub, "makespan {t} above serialization bound {ub}");
    }

    /// Adding a message never shrinks the makespan.
    #[test]
    fn mesh_monotone_in_messages(ms in msgs(32), extra in (0usize..32, 0usize..32, 1u64..512)) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let base = mesh.simulate_phase(&ms);
        let mut more = ms.clone();
        more.push(PMsg { src: extra.0, dst: extra.1, bytes: extra.2 });
        prop_assert!(mesh.simulate_phase(&more) >= base);
    }

    /// Growing every payload never shrinks the makespan.
    #[test]
    fn mesh_monotone_in_bytes(ms in msgs(32)) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let base = mesh.simulate_phase(&ms);
        let bigger: Vec<PMsg> = ms.iter().map(|m| PMsg { bytes: m.bytes * 2, ..*m }).collect();
        prop_assert!(mesh.simulate_phase(&bigger) >= base);
    }

    /// The trace agrees with the simulation and its bottleneck bound.
    #[test]
    fn trace_consistent(ms in msgs(32)) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let t = trace_phase(&mesh, &ms);
        prop_assert_eq!(t.makespan, mesh.simulate_phase(&ms));
        prop_assert!(t.makespan >= t.bottleneck_bound());
    }

    /// Fat-tree scheduling shares the same monotonicity.
    #[test]
    fn fattree_monotone(ms in msgs(32)) {
        let ft = FatTree::new(32, 4, CostModel::cm5());
        let base = ft.simulate_phase(&ms);
        let bigger: Vec<PMsg> = ms.iter().map(|m| PMsg { bytes: m.bytes + 64, ..*m }).collect();
        prop_assert!(ft.simulate_phase(&bigger) >= base);
        // More lanes never hurt.
        let fat = FatTree::with_lanes(32, 4, CostModel::cm5(), &[2, 2, 2]);
        prop_assert!(fat.simulate_phase(&ms) <= base);
    }

    /// Determinism: the same message set (any order) gives one makespan,
    /// because the scheduler sorts internally.
    #[test]
    fn order_independent(ms in msgs(32)) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut rev = ms.clone();
        rev.reverse();
        prop_assert_eq!(mesh.simulate_phase(&ms), mesh.simulate_phase(&rev));
    }

    /// Permutation invariance under an arbitrary rotation (not just
    /// reversal): the scheduler's internal sort erases input order.
    #[test]
    fn mesh_permutation_invariant(ms in msgs(32), rot in 0usize..24) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut perm = ms.clone();
        if !perm.is_empty() {
            let mid = rot % perm.len();
            perm.rotate_left(mid);
        }
        prop_assert_eq!(mesh.simulate_phase(&ms), mesh.simulate_phase(&perm));
    }

    /// The zero-alloc scratch engine is bit-identical to the oracle, even
    /// when reused across phases (stale reservations must never leak).
    #[test]
    fn phasesim_matches_oracle(a in msgs(32), b in msgs(32), c in msgs(32)) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh.clone());
        for ms in [&a, &b, &c] {
            prop_assert_eq!(sim.simulate_phase(ms), mesh.simulate_phase(ms));
        }
        // And once more in reverse order over the same engine.
        for ms in [&c, &a, &b] {
            prop_assert_eq!(sim.simulate_phase(ms), mesh.simulate_phase(ms));
        }
    }

    /// A precompiled phase replays to the oracle makespan, and uniform
    /// payload scaling through the cache equals simulating scaled messages.
    #[test]
    fn cached_phase_matches_oracle(ms in msgs(32), scale in 1u64..64) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let cached = CachedPhase::new(&mesh, &ms);
        let mut sim = PhaseSim::new(mesh.clone());
        prop_assert_eq!(sim.run_cached(&cached), mesh.simulate_phase(&ms));
        let scaled: Vec<PMsg> = ms
            .iter()
            .map(|m| PMsg { bytes: m.bytes * scale, ..*m })
            .collect();
        prop_assert_eq!(
            sim.run_cached_scaled(&cached, scale),
            mesh.simulate_phase(&scaled)
        );
    }

    /// The batch API agrees with per-phase oracle simulation at any
    /// thread count.
    #[test]
    fn batch_matches_oracle(a in msgs(32), b in msgs(32), threads in 1usize..6) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let phases = vec![a, b];
        let want: Vec<u64> = phases.iter().map(|p| mesh.simulate_phase(p)).collect();
        prop_assert_eq!(simulate_phases_batch(&mesh, &phases, threads), want);
    }

    /// With retries enabled, *any* fault plan delivers every message
    /// exactly once (the attempt cap escalates to a reliable channel), the
    /// schedule never beats the fault-free one, and the same plan replays
    /// bit-identically.
    #[test]
    fn faulty_delivery_guarantee(ms in msgs(32), plan in plans()) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh.clone());
        let rep = sim.simulate_phase_faulty(&ms, &plan);
        prop_assert_eq!(rep.delivered, rep.messages, "exactly-once delivery");
        prop_assert_eq!(rep.lost, 0);
        prop_assert!(rep.delivered_fraction() == 1.0);
        prop_assert!(rep.attempts >= rep.messages as u64);
        prop_assert!(rep.makespan >= mesh.simulate_phase(&ms), "faults cannot speed up a phase");
        // Determinism: replaying the identical plan reproduces the report.
        prop_assert_eq!(rep, sim.simulate_phase_faulty(&ms, &plan));
    }

    /// A zero-fault plan is bit-identical in makespan to the unfaulted
    /// scheduler (and hence to the `Mesh2D` oracle) on random phase sets.
    #[test]
    fn zero_fault_plan_bit_identical(a in msgs(32), b in msgs(32), seed in 0u64..1000) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh.clone());
        let plan = FaultPlan { seed, ..FaultPlan::none() };
        prop_assert!(plan.is_zero_fault());
        for ms in [&a, &b] {
            let rep = sim.simulate_phase_faulty(ms, &plan);
            prop_assert_eq!(rep.makespan, sim.simulate_phase(ms));
            prop_assert_eq!(rep.makespan, mesh.simulate_phase(ms));
            prop_assert_eq!(rep.retries + rep.duplicates + rep.reroutes + rep.deferrals, 0);
        }
        // Multi-phase: sums match too.
        let phases = vec![a.clone(), b.clone()];
        let rep = sim.simulate_phases_faulty(&phases, &plan);
        prop_assert_eq!(rep.makespan, mesh.simulate_phases(&phases));
    }

    /// Without retries, every message is either delivered or counted lost —
    /// nothing vanishes from the accounting.
    #[test]
    fn no_retry_accounting_is_total(ms in msgs(32), plan in plans()) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh.clone());
        let plan = FaultPlan { retry: RetryPolicy::disabled(), ..plan };
        let rep = sim.simulate_phase_faulty(&ms, &plan);
        prop_assert_eq!(rep.delivered + rep.lost, rep.messages);
        prop_assert_eq!(rep.escalations, 0);
        prop_assert_eq!(rep.retries, 0);
    }

    /// Checkpoint/restart under random deaths, transport faults and
    /// checkpoint policies: every death is detected and recovered exactly
    /// once, every message delivered to a live endpoint, and the whole
    /// run replays bit-identically.
    #[test]
    fn recovery_is_deterministic_and_exactly_once(
        a in msgs(32), b in msgs(32), c in msgs(32),
        plan in plans(),
        deaths in proptest::collection::vec((0usize..32, 0u64..2_000_000), 1..3),
        latency in 0u64..50_000,
        policy_raw in (1usize..6, 1usize..6),
    ) {
        let (interval, ring) = policy_raw;
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh);
        let mut plan = FaultPlan { detection_latency: latency, ..plan };
        for (node, t) in deaths {
            if !plan.node_deaths.iter().any(|d| d.node == node) {
                plan.node_deaths.push(NodeDeath { node, t });
            }
        }
        let phases = vec![a, b, c];
        let policy = CheckpointPolicy { interval, ring, ..CheckpointPolicy::default() };
        let rep = sim.simulate_phases_recovering(&phases, &plan, &policy);
        prop_assert!(rep.recovery.all_recovered(), "{:?}", rep.recovery);
        prop_assert!(rep.recovery.deaths <= plan.node_deaths.len());
        prop_assert_eq!(rep.delivered, rep.messages, "exactly-once delivery");
        prop_assert_eq!(rep.black_holes, 0, "folding leaves no black holes");
        prop_assert!(rep.wall_clock_ns() >= rep.makespan);
        prop_assert_eq!(rep, sim.simulate_phases_recovering(&phases, &plan, &policy));
    }

    /// With no deaths in the plan, the recovering driver is bit-identical
    /// to the plain faulty simulator — checkpointing costs nothing but
    /// the bookkeeping it reports.
    #[test]
    fn zero_death_recovery_bit_identity(
        a in msgs(32), b in msgs(32),
        plan in plans(),
        policy_raw in (1usize..6, 1usize..6),
    ) {
        let (interval, ring) = policy_raw;
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh);
        let phases = vec![a, b];
        let policy = CheckpointPolicy { interval, ring, ..CheckpointPolicy::default() };
        let rec = sim.simulate_phases_recovering(&phases, &plan, &policy);
        let base = sim.simulate_phases_faulty(&phases, &plan);
        prop_assert_eq!(rec.makespan, base.makespan);
        prop_assert_eq!(rec.delivered, base.delivered);
        prop_assert_eq!(rec.lost, base.lost);
        prop_assert_eq!(rec.recovery.rollbacks, 0);
        prop_assert_eq!(rec.recovery.lost_work_ns, 0);
        prop_assert!(rec.recovery.checkpoints > 0);
    }

    /// The compiled plan answers every outage/liveness query exactly like
    /// the per-call scans it replaces.
    #[test]
    fn compiled_plan_lookups_match(
        plan in plans(),
        deaths in proptest::collection::vec((0usize..32, 0u64..500_000), 0..3),
        queries in proptest::collection::vec((0usize..104, 0usize..32, 0u64..600_000), 0..32),
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut plan = plan;
        for (node, t) in deaths {
            plan.node_deaths.push(NodeDeath { node, t });
        }
        let compiled = CompiledFaultPlan::new(&plan, &mesh);
        for (link, node, t) in queries {
            prop_assert_eq!(compiled.link_dead_at(link, t), plan.link_dead_at(link, t));
            prop_assert_eq!(
                compiled.link_outage_until(link, t),
                plan.link_outage_until(link, t)
            );
            prop_assert_eq!(compiled.node_dead_at(node, t), plan.node_dead_at(node, t));
            prop_assert_eq!(
                compiled.node_alive_after(node, t),
                plan.node_alive_after(node, t)
            );
        }
    }

    /// The compiled faulty replay produces the full `FaultReport` the
    /// per-call oracle produces, for every seed of a batch and under
    /// every schedule policy, over random plans that exercise drops,
    /// duplicates, reroutes, deferrals and black holes.
    #[test]
    fn compiled_faulty_replay_bit_identical(
        a in msgs(32), b in msgs(32), c in msgs(32),
        plan in plans(),
        deaths in proptest::collection::vec((0usize..32, 0u64..2_000_000), 0..3),
        no_retry in 0u32..2,
        sched_idx in 0u32..4,
        seeds in proptest::collection::vec(0u64..1_000_000, 1..4),
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut plan = plan;
        if no_retry == 1 {
            plan.retry = RetryPolicy::disabled();
        }
        for (node, t) in deaths {
            plan.node_deaths.push(NodeDeath { node, t });
        }
        let sched = policy(sched_idx);
        let phases = vec![a, b, c];
        let mut engine = FaultSim::new(&mesh, &phases, &plan);
        let mut sim = PhaseSim::new(mesh);
        let batch = engine.replay_faulty(&seeds, sched);
        for (&seed, got) in seeds.iter().zip(&batch) {
            let seeded = FaultPlan { seed, ..plan.clone() };
            prop_assert_eq!(
                *got,
                sim.simulate_phases_faulty_policy(&phases, &seeded, sched),
                "seed {} sched {:?}", seed, sched
            );
        }
    }

    /// The compiled recovering replay is bit-identical (full report,
    /// `RecoveryReport` included) to the rollback oracle over random
    /// plans, deaths, detection latencies, checkpoint policies, seeds
    /// and schedule policies.
    #[test]
    fn compiled_recovering_replay_bit_identical(
        a in msgs(32), b in msgs(32), c in msgs(32),
        plan in plans(),
        deaths in proptest::collection::vec((0usize..32, 0u64..2_000_000), 1..3),
        latency in 0u64..50_000,
        policy_raw in (1usize..6, 1usize..6),
        sched_idx in 0u32..4,
        seeds in proptest::collection::vec(0u64..1_000_000, 1..3),
    ) {
        let (interval, ring) = policy_raw;
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut plan = FaultPlan { detection_latency: latency, ..plan };
        for (node, t) in deaths {
            plan.node_deaths.push(NodeDeath { node, t });
        }
        let sched = policy(sched_idx);
        let phases = vec![a, b, c];
        let policy = CheckpointPolicy { interval, ring, ..CheckpointPolicy::default() };
        let mut engine = FaultSim::new(&mesh, &phases, &plan);
        let mut sim = PhaseSim::new(mesh);
        let batch = engine.replay_recovering(&policy, &seeds, sched);
        for (&seed, got) in seeds.iter().zip(&batch) {
            let seeded = FaultPlan { seed, ..plan.clone() };
            prop_assert_eq!(
                *got,
                sim.simulate_phases_recovering_policy(&phases, &seeded, &policy, sched),
                "seed {} sched {:?}", seed, sched
            );
        }
    }

    /// Per-phase seed derivation (`seed + index`) through the batch API:
    /// replacing one phase's content leaves every other phase's fault
    /// stream untouched, and appending a phase never shifts the existing
    /// ones — for the oracle and the compiled engine alike.
    #[test]
    fn batch_replay_per_phase_seed_stability(
        a in msgs(32), b in msgs(32), c in msgs(32),
        replacement in msgs(32),
        plan in plans(),
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let phases = vec![a.clone(), b.clone(), c.clone()];
        let mut engine = FaultSim::new(&mesh, &phases, &plan);
        let base = engine.run_faulty_per_phase(plan.seed);
        prop_assert_eq!(base.len(), 3);
        // The per-phase reports sum to the whole-run report.
        let mut summed = FaultReport::default();
        for rep in &base {
            summed.absorb(rep);
        }
        let mut sim = PhaseSim::new(mesh.clone());
        prop_assert_eq!(summed, sim.simulate_phases_faulty(&phases, &plan));
        // Replace the middle phase: streams 0 and 2 must not move.
        let swapped = vec![a.clone(), replacement.clone(), c.clone()];
        let swapped_reps =
            FaultSim::new(&mesh, &swapped, &plan).run_faulty_per_phase(plan.seed);
        prop_assert_eq!(&base[0], &swapped_reps[0]);
        prop_assert_eq!(&base[2], &swapped_reps[2]);
        // Append a phase: the existing three are bit-identical; dropping
        // the last phase is the same statement read backwards.
        let extended = vec![a, b, c, replacement];
        let extended_reps =
            FaultSim::new(&mesh, &extended, &plan).run_faulty_per_phase(plan.seed);
        prop_assert_eq!(extended_reps.len(), 4);
        prop_assert_eq!(&extended_reps[..3], &base[..]);
    }

    /// `par_fault_sweep` is bit-identical to serial evaluation order at
    /// any thread count, and replication 0 of every configuration is the
    /// plan's own single-seed run.
    #[test]
    fn par_fault_sweep_bit_identical_to_serial(
        a in msgs(32), b in msgs(32),
        plan_seeds in proptest::collection::vec(0u64..1_000_000, 1..4),
        drop_pct in 0u32..101,
        replications in 1usize..4,
        threads in 2usize..6,
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let phases = vec![a, b];
        let plans: Vec<FaultPlan> = plan_seeds
            .iter()
            .map(|&seed| FaultPlan::with_drop(seed, f64::from(drop_pct) / 100.0))
            .collect();
        let serial = par_fault_sweep(&mesh, &phases, &plans, replications, 1, SchedulePolicy::default());
        let parallel = par_fault_sweep(&mesh, &phases, &plans, replications, threads, SchedulePolicy::default());
        prop_assert_eq!(&serial, &parallel);
        let mut sim = PhaseSim::new(mesh.clone());
        for (plan, stats) in plans.iter().zip(&serial) {
            prop_assert_eq!(stats.replications, replications);
            prop_assert_eq!(replication_seed(plan.seed, 0), plan.seed);
            let classic = sim.simulate_phases_faulty(&phases, plan);
            prop_assert!(stats.makespan.min() <= classic.makespan as f64);
            prop_assert!(stats.makespan.max() >= classic.makespan as f64);
        }
    }

    /// The overlapped scheduler (default order) never exceeds the phased
    /// makespan, never beats the slowest standalone phase, is
    /// deterministic across engine reuse, and `Phased` mode stays
    /// bit-identical to `simulate_phases`.
    #[test]
    fn overlapped_bounded_by_phased(a in msgs(32), b in msgs(32), c in msgs(32)) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh.clone());
        let phases = vec![a, b, c];
        let phased = sim.simulate_phases(&phases);
        prop_assert_eq!(sim.simulate_phases_mode(&phases, ScheduleMode::Phased), phased);
        prop_assert_eq!(phased, mesh.simulate_phases(&phases));
        let over = sim.simulate_phases_overlapped(&phases, OverlapOrder::Sorted);
        prop_assert!(over <= phased, "overlapped {over} beats phased {phased} the wrong way");
        // Relaxing barriers cannot beat the slowest phase run alone.
        let slowest = phases.iter().map(|p| mesh.simulate_phase(p)).max().unwrap_or(0);
        prop_assert!(over >= slowest, "overlapped {over} below slowest phase {slowest}");
        // Determinism across scratch reuse.
        prop_assert_eq!(over, sim.simulate_phases_overlapped(&phases, OverlapOrder::Sorted));
    }

    /// Dependency safety, both orders: no message starts before every
    /// inflow of its source node from all earlier phases has arrived,
    /// and the reported makespan is exactly the last arrival.
    #[test]
    fn overlapped_dependency_safety(a in msgs(32), b in msgs(32), c in msgs(32), longest in 0u32..2) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let order = if longest == 1 { OverlapOrder::LongestFirst } else { OverlapOrder::Sorted };
        let mut sim = PhaseSim::new(mesh.clone());
        let phases = vec![a, b, c];
        let (makespan, events) = sim.simulate_phases_overlapped_traced(&phases, order);
        prop_assert_eq!(makespan, events.iter().map(|e| e.end).max().unwrap_or(0));
        for e in &events {
            // Inflows of the source node across *all* earlier phases —
            // readiness accumulates, it is not reset per phase.
            let inflow = events
                .iter()
                .filter(|p| p.phase < e.phase && p.msg.dst == e.msg.src)
                .map(|p| p.end)
                .max()
                .unwrap_or(0);
            prop_assert!(e.ready >= inflow, "released at {} before inflow {}", e.ready, inflow);
            prop_assert!(e.start >= e.ready);
            prop_assert!(e.end > e.start);
        }
    }

    /// A single-phase plan schedules bit-identically under phased and
    /// (default) overlapped modes — with no previous phase, every node is
    /// ready at t=0 and the greedy order coincides.
    #[test]
    fn overlapped_single_phase_identical(ms in msgs(32)) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh.clone());
        let phases = vec![ms];
        let phased = sim.simulate_phases(&phases);
        prop_assert_eq!(sim.simulate_phases_overlapped(&phases, OverlapOrder::Sorted), phased);
        prop_assert_eq!(sim.simulate_phases_mode(&phases, ScheduleMode::overlapped()), phased);
    }

    /// Cached multi-phase replay under every mode equals direct
    /// simulation of the uniformly scaled plan.
    #[test]
    fn cached_schedule_replay_bit_identical(
        a in msgs(32), b in msgs(32),
        scale in 1u64..64,
        longest in 0u32..2,
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let phases = [a, b];
        let cached: Vec<CachedPhase> =
            phases.iter().map(|p| CachedPhase::new(&mesh, p)).collect();
        let scaled: Vec<Vec<PMsg>> = phases
            .iter()
            .map(|p| p.iter().map(|m| PMsg { bytes: m.bytes * scale, ..*m }).collect())
            .collect();
        let order = if longest == 1 { OverlapOrder::LongestFirst } else { OverlapOrder::Sorted };
        let mut sim = PhaseSim::new(mesh.clone());
        for mode in [ScheduleMode::Phased, ScheduleMode::Overlapped(order)] {
            prop_assert_eq!(
                sim.run_cached_phases(&cached, mode, scale),
                sim.simulate_phases_mode(&scaled, mode)
            );
        }
    }

    /// A zero-fault plan under the overlapped engines is bit-identical
    /// in makespan to the fault-free overlapped scheduler, under both
    /// orders and under every policy dispatch; the adaptive policy
    /// never degrades without fault inflation.
    #[test]
    fn zero_fault_overlapped_bit_identical(
        a in msgs(32), b in msgs(32), c in msgs(32),
        seed in 0u64..1000,
        longest in 0u32..2,
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh);
        let plan = FaultPlan { seed, ..FaultPlan::none() };
        prop_assert!(plan.is_zero_fault());
        let phases = vec![a, b, c];
        let order = if longest == 1 { OverlapOrder::LongestFirst } else { OverlapOrder::Sorted };
        let healthy = sim.simulate_phases_overlapped(&phases, order);
        let rep = sim.simulate_phases_overlapped_faulty(&phases, &plan, order);
        prop_assert_eq!(rep.makespan, healthy);
        prop_assert_eq!(rep.delivered, rep.messages);
        prop_assert_eq!(rep.retries + rep.duplicates + rep.reroutes + rep.deferrals, 0);
        prop_assert_eq!(rep.downgrades, 0);
        // Policy dispatch agrees with the mode it names.
        for idx in 0..4u32 {
            let sched = policy(idx);
            let got = sim.simulate_phases_faulty_policy(&phases, &plan, sched);
            prop_assert_eq!(
                got.makespan,
                sim.simulate_phases_mode(&phases, sched.healthy_mode()),
                "sched {:?}", sched
            );
            prop_assert_eq!(got.downgrades, 0, "zero-fault run degraded: {:?}", sched);
        }
        // The prefix baseline's last entry is the full overlapped run.
        let prefix = sim.simulate_phases_overlapped_prefix(&phases, OverlapOrder::Sorted);
        prop_assert_eq!(prefix.len(), phases.len());
        prop_assert_eq!(
            prefix.last().copied().unwrap_or(0),
            sim.simulate_phases_overlapped(&phases, OverlapOrder::Sorted)
        );
        prop_assert!(prefix.windows(2).all(|w| w[0] <= w[1]), "prefix not monotone");
    }

    /// Recovery under overlap: every death detected and survived, every
    /// message delivered exactly once to a live survivor, the run
    /// replays bit-identically, and with no deaths the recovering
    /// driver is bit-identical to the overlapped faulty engine.
    #[test]
    fn overlapped_recovery_exactly_once_and_deterministic(
        a in msgs(32), b in msgs(32), c in msgs(32),
        plan in plans(),
        deaths in proptest::collection::vec((0usize..32, 0u64..2_000_000), 1..3),
        latency in 0u64..50_000,
        policy_raw in (1usize..6, 1usize..6),
        longest in 0u32..2,
    ) {
        let (interval, ring) = policy_raw;
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut sim = PhaseSim::new(mesh);
        let order = if longest == 1 { OverlapOrder::LongestFirst } else { OverlapOrder::Sorted };
        let phases = vec![a, b, c];
        let ckpt = CheckpointPolicy { interval, ring, ..CheckpointPolicy::default() };
        // Zero-death: bit-identical to the overlapped faulty engine.
        let rec = sim.simulate_phases_overlapped_recovering(&phases, &plan, &ckpt, order);
        let base = sim.simulate_phases_overlapped_faulty(&phases, &plan, order);
        prop_assert_eq!(rec.makespan, base.makespan);
        prop_assert_eq!(rec.delivered, base.delivered);
        prop_assert_eq!(rec.recovery.rollbacks, 0);
        // With deaths: exactly-once, fully recovered, deterministic.
        let mut plan = FaultPlan { detection_latency: latency, ..plan };
        for (node, t) in deaths {
            if !plan.node_deaths.iter().any(|d| d.node == node) {
                plan.node_deaths.push(NodeDeath { node, t });
            }
        }
        let rep = sim.simulate_phases_overlapped_recovering(&phases, &plan, &ckpt, order);
        prop_assert!(rep.recovery.all_recovered(), "{:?}", rep.recovery);
        prop_assert_eq!(rep.delivered, rep.messages, "exactly-once delivery");
        prop_assert_eq!(rep.black_holes, 0, "folding leaves no black holes");
        prop_assert!(rep.wall_clock_ns() >= rep.makespan);
        prop_assert_eq!(
            rep,
            sim.simulate_phases_overlapped_recovering(&phases, &plan, &ckpt, order)
        );
    }

    /// The Monte Carlo sweeps are bit-identical across thread counts
    /// under every schedule policy — overlapped and adaptive replication
    /// stays a pure function of `(plan, rep, sched)`.
    #[test]
    fn sweeps_thread_deterministic_under_every_policy(
        a in msgs(32), b in msgs(32), c in msgs(32),
        plan in plans(),
        deaths in proptest::collection::vec((0usize..32, 0u64..2_000_000), 0..2),
        sched_idx in 0u32..4,
        threads in 2usize..5,
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mut plan = plan;
        for (node, t) in deaths {
            plan.node_deaths.push(NodeDeath { node, t });
        }
        let sched = policy(sched_idx);
        let phases = vec![a, b, c];
        let plans = [plan.clone(), FaultPlan { seed: plan.seed ^ 0xbeef, ..plan.clone() }];
        let ckpt = CheckpointPolicy::default();
        let serial = par_fault_sweep(&mesh, &phases, &plans, 2, 1, sched);
        prop_assert_eq!(
            &serial,
            &par_fault_sweep(&mesh, &phases, &plans, 2, threads, sched)
        );
        let serial_rec = par_recovery_sweep(&mesh, &phases, &plans, &ckpt, 2, 1, sched);
        prop_assert_eq!(
            &serial_rec,
            &par_recovery_sweep(&mesh, &phases, &plans, &ckpt, 2, threads, sched)
        );
        // And the sweep's replication 0 is the engine's own run.
        let mut engine = FaultSim::new(&mesh, &phases, &plans[0]);
        let one = engine.run_faulty(replication_seed(plans[0].seed, 0), sched);
        prop_assert_eq!(serial[0].total.makespan >= one.makespan, true);
    }
}

// --- snapshot/restore round-trips (the service durability contract) ------

use rescomm_machine::snapshot::{
    cached_phases_from_json, cached_phases_to_json, compiled_plan_from_json, compiled_plan_to_json,
    fault_plan_from_json, fault_plan_to_json, mesh_from_json, mesh_to_json,
};

proptest! {
    /// Cached phases survive JSON round-trips verbatim: the restored
    /// plan replays bit-identically under every schedule mode and
    /// payload scale.
    #[test]
    fn cached_phase_snapshot_replays_bit_identical(
        a in msgs(32), b in msgs(32),
        scale in 1u64..64,
        longest in 0u32..2,
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let cached: Vec<CachedPhase> =
            [&a, &b].iter().map(|p| CachedPhase::new(&mesh, p)).collect();
        let text = cached_phases_to_json(&cached).render();
        let back = cached_phases_from_json(
            &rescomm_json::parse(&text).expect("self-produced JSON parses"),
        ).expect("restore");
        let order = if longest == 1 { OverlapOrder::LongestFirst } else { OverlapOrder::Sorted };
        let mut sim = PhaseSim::new(mesh.clone());
        for mode in [ScheduleMode::Phased, ScheduleMode::Overlapped(order)] {
            prop_assert_eq!(
                sim.run_cached_phases(&back, mode, scale),
                sim.run_cached_phases(&cached, mode, scale),
                "{:?}", mode
            );
        }
    }

    /// A compiled fault plan snapshot restores to an engine that
    /// replays the exact `FaultReport` of the original, and answers
    /// every outage/liveness query identically.
    #[test]
    fn compiled_plan_snapshot_replays_bit_identical(
        a in msgs(32),
        plan in plans(),
        queries in proptest::collection::vec((0usize..104, 0usize..32, 0u64..500_000), 0..16),
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let compiled = CompiledFaultPlan::new(&plan, &mesh);
        let text = compiled_plan_to_json(&compiled, &mesh).render();
        let (back, mesh_back) = compiled_plan_from_json(
            &rescomm_json::parse(&text).expect("self-produced JSON parses"),
        ).expect("restore");
        prop_assert_eq!(mesh_back.px, mesh.px);
        prop_assert_eq!(mesh_back.py, mesh.py);
        for (link, node, t) in queries {
            prop_assert_eq!(back.link_dead_at(link, t), compiled.link_dead_at(link, t));
            prop_assert_eq!(back.link_outage_until(link, t), compiled.link_outage_until(link, t));
            prop_assert_eq!(back.node_dead_at(node, t), compiled.node_dead_at(node, t));
            prop_assert_eq!(back.node_alive_after(node, t), compiled.node_alive_after(node, t));
        }
        let phase = CachedFaultPhase::new(&mesh, &a);
        let seed = replication_seed(plan.seed, 1);
        let want = PhaseSim::new(mesh.clone()).run_cached_faulty(&phase, &compiled, seed);
        let got = PhaseSim::new(mesh_back).run_cached_faulty(&phase, &back, seed);
        prop_assert_eq!(got, want);
    }

    /// The raw fault-plan and mesh snapshots are lossless for every
    /// generated plan (probabilities, outages, retry policy, cost
    /// model — bit for bit).
    #[test]
    fn fault_plan_and_mesh_snapshots_lossless(plan in plans()) {
        let text = fault_plan_to_json(&plan).render();
        let back = fault_plan_from_json(
            &rescomm_json::parse(&text).expect("self-produced JSON parses"),
        ).expect("restore");
        prop_assert_eq!(back, plan);
        let mesh = Mesh2D::new(8, 4, CostModel::cm5());
        let mesh_back = mesh_from_json(
            &rescomm_json::parse(&mesh_to_json(&mesh).render()).expect("parses"),
        ).expect("restore");
        prop_assert_eq!(mesh_back.px, mesh.px);
        prop_assert_eq!(mesh_back.py, mesh.py);
        prop_assert_eq!(mesh_back.cost, mesh.cost);
    }
}

// --- the work-stealing pool (the determinism contract, end to end) -------

use rescomm_machine::pool::{auto_grain, sweep};
use rescomm_machine::{par_schedule_sweep, par_sweep_with};

/// A pure task of tunable cost: `w` multiply-add rounds over a seed.
fn spin(seed: u64, w: u64) -> u64 {
    let mut acc = seed ^ w;
    for i in 0..w {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

proptest! {
    /// The pool itself: results land in input order and bit-identical to
    /// the serial map at any worker count, any explicit or auto grain,
    /// and any task-cost skew — and the report tells the truth about the
    /// workers actually used.
    #[test]
    fn pool_sweep_bit_identical_under_cost_skew(
        weights in proptest::collection::vec(0u64..3_000, 1..120),
        workers in 1usize..9,
        grain in 0usize..9,
    ) {
        let expect: Vec<u64> = weights.iter().map(|&w| spin(0x5eed, w)).collect();
        let (got, report) = sweep(
            &weights,
            workers,
            grain,
            || 0u64,
            // The per-worker counter proves scratch-state reuse cannot
            // leak into results: the answer ignores it entirely.
            |calls, &w| {
                *calls += 1;
                spin(0x5eed, w)
            },
        );
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(report.requested, workers);
        prop_assert_eq!(report.workers, workers.clamp(1, weights.len()));
        prop_assert_eq!(report.tasks, weights.len());
        let want_grain = if grain > 0 {
            grain
        } else {
            auto_grain(weights.len(), report.workers)
        };
        prop_assert_eq!(report.grain, want_grain);
    }

    /// `par_sweep_with` (the driver every entry point shares) under the
    /// same skew, against a plain serial map.
    #[test]
    fn par_sweep_with_bit_identical_under_cost_skew(
        weights in proptest::collection::vec(0u64..3_000, 1..120),
        workers in 2usize..9,
    ) {
        let expect: Vec<u64> = weights.iter().map(|&w| spin(0xcafe, w)).collect();
        let got = par_sweep_with(&weights, workers, || (), |(), &w| spin(0xcafe, w));
        prop_assert_eq!(&got, &expect);
    }

    /// The schedule sweep: bit-identical to its 1-worker run and to the
    /// per-scale oracle at any worker count.
    #[test]
    fn par_schedule_sweep_bit_identical_to_serial(
        a in msgs(32), b in msgs(32), c in msgs(32),
        scales in proptest::collection::vec(1u64..64, 1..12),
        workers in 2usize..7,
        mode_idx in 0u32..3,
    ) {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let mode = match mode_idx {
            0 => ScheduleMode::Phased,
            1 => ScheduleMode::overlapped(),
            _ => ScheduleMode::Overlapped(OverlapOrder::LongestFirst),
        };
        let cached: Vec<CachedPhase> = [&a, &b, &c]
            .iter()
            .map(|p| CachedPhase::new(&mesh, p))
            .collect();
        let serial = par_schedule_sweep(&mesh, &cached, mode, &scales, 1);
        prop_assert_eq!(
            &serial,
            &par_schedule_sweep(&mesh, &cached, mode, &scales, workers)
        );
        let mut sim = PhaseSim::new(mesh.clone());
        for (&scale, &got) in scales.iter().zip(&serial) {
            prop_assert_eq!(sim.run_cached_phases(&cached, mode, scale), got);
        }
    }
}
