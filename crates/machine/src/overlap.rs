//! Dependency-aware overlapped execution of multi-phase plans.
//!
//! [`PhaseSim::simulate_phases`] runs phases as strict barriers: every
//! message of phase k+1 waits for the globally slowest message of phase
//! k. The overlapped scheduler in this module relaxes the barrier to the
//! true dataflow dependence: a phase-k+1 message becomes *ready* once its
//! **source node** has received all of its phase-k inflows, and ready
//! messages are list-scheduled greedily onto the same per-link timelines
//! the phased engine uses.
//!
//! # Determinism and the ≤-phased guarantee
//!
//! Greedy list scheduling suffers from Graham anomalies: processing
//! messages in an arbitrary priority order can produce a *longer*
//! schedule than the barriered one. The default
//! [`OverlapOrder::Sorted`] therefore processes messages in exactly the
//! phased engine's order — phase-major, within each phase the sorted
//! [`PMsg`] total order — and uses readiness only as a per-message
//! release time. Under that order a simple induction holds: every
//! message's overlapped start is ≤ its phased start (its release time is
//! ≤ the end of the previous phase, and every earlier-processed message
//! finished no later than it did in the phased schedule), so the
//! overlapped makespan is **structurally ≤ the phased makespan** and a
//! single-phase plan schedules bit-identically under both modes.
//!
//! [`OverlapOrder::LongestFirst`] is the true priority-queue order from
//! the issue — (ready time, longest route first, [`PMsg`] order) — which
//! can win on contended meshes but carries no ≤ guarantee; benches score
//! it against the default rather than gating on it.

use crate::fault::{fold_target, FaultPlan, FaultReport};
use crate::mesh::Mesh2D;
use crate::phasesim::{CachedPhase, CheckpointPolicy, OverlapCheckpoint, PhaseSim};
use crate::rng::XorShift64;
use crate::sweep::par_sweep_with;
use crate::PMsg;
use std::cmp::Reverse;
use std::collections::VecDeque;

/// How a multi-phase plan is executed on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScheduleMode {
    /// Strict barriers between phases (the historical behaviour);
    /// bit-identical to [`PhaseSim::simulate_phases`].
    #[default]
    Phased,
    /// Software-pipelined: messages release as soon as their source
    /// node's inflows from the previous phase have arrived.
    Overlapped(OverlapOrder),
}

impl ScheduleMode {
    /// The default overlapped mode ([`OverlapOrder::Sorted`]).
    pub fn overlapped() -> Self {
        ScheduleMode::Overlapped(OverlapOrder::Sorted)
    }

    /// Parse a CLI spelling: `phased`, `overlapped`, `overlapped-longest`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "phased" => Some(ScheduleMode::Phased),
            "overlapped" => Some(ScheduleMode::Overlapped(OverlapOrder::Sorted)),
            "overlapped-longest" => Some(ScheduleMode::Overlapped(OverlapOrder::LongestFirst)),
            _ => None,
        }
    }

    /// The CLI spelling accepted by [`ScheduleMode::parse`].
    pub fn label(self) -> &'static str {
        match self {
            ScheduleMode::Phased => "phased",
            ScheduleMode::Overlapped(OverlapOrder::Sorted) => "overlapped",
            ScheduleMode::Overlapped(OverlapOrder::LongestFirst) => "overlapped-longest",
        }
    }
}

/// Intra-phase processing order of the overlapped scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverlapOrder {
    /// The phased engine's order (sorted [`PMsg`] order within each
    /// phase). Guarantees overlapped makespan ≤ phased makespan.
    #[default]
    Sorted,
    /// Priority order (ready time, longest route first, [`PMsg`] order).
    /// A heuristic for contended meshes; no ≤-phased guarantee.
    LongestFirst,
}

/// How the fault-injected engines pick a [`ScheduleMode`] — either
/// pinned for the whole run, or adaptively degraded mid-run.
///
/// Under [`SchedulePolicy::Adaptive`], the run starts overlapped
/// ([`OverlapOrder::Sorted`]) and compares, at every phase boundary, the
/// observed makespan against the healthy (fault-free) overlapped
/// makespan of the same phase prefix. The moment the ratio exceeds
/// `inflation_threshold`, the engine falls back to **phased barriers
/// for the remaining phases** — the conservative order whose
/// phase-aligned quiescence keeps rollback and retry storms contained —
/// and records the downgrade in [`FaultReport::downgrades`]. The
/// decision uses only committed state, so adaptive runs replay
/// deterministically (and roll back consistently: the flag is part of
/// every overlapped checkpoint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulePolicy {
    /// Always execute under the given mode.
    Fixed(ScheduleMode),
    /// Start overlapped; degrade to phased barriers when the observed
    /// fault inflation over the healthy overlapped baseline crosses
    /// `inflation_threshold` (e.g. `1.5` = 50% slower than healthy).
    Adaptive {
        /// Ratio of observed to healthy prefix makespan that triggers
        /// the downgrade (sensible values are ≥ 1).
        inflation_threshold: f64,
    },
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        SchedulePolicy::Fixed(ScheduleMode::Phased)
    }
}

impl SchedulePolicy {
    /// Threshold used by the bare `adaptive` CLI spelling.
    pub const DEFAULT_INFLATION_THRESHOLD: f64 = 1.5;

    /// The adaptive policy at the default threshold.
    pub fn adaptive() -> Self {
        SchedulePolicy::Adaptive {
            inflation_threshold: Self::DEFAULT_INFLATION_THRESHOLD,
        }
    }

    /// Parse a CLI spelling: any [`ScheduleMode::parse`] spelling,
    /// `adaptive`, or `adaptive:<threshold>` (threshold ≥ 1).
    pub fn parse(s: &str) -> Option<Self> {
        if let Some(mode) = ScheduleMode::parse(s) {
            return Some(SchedulePolicy::Fixed(mode));
        }
        if s == "adaptive" {
            return Some(Self::adaptive());
        }
        if let Some(t) = s.strip_prefix("adaptive:") {
            let t: f64 = t.parse().ok()?;
            if t.is_finite() && t >= 1.0 {
                return Some(SchedulePolicy::Adaptive {
                    inflation_threshold: t,
                });
            }
        }
        None
    }

    /// The CLI spelling accepted by [`SchedulePolicy::parse`].
    pub fn label(self) -> String {
        match self {
            SchedulePolicy::Fixed(mode) => mode.label().to_string(),
            SchedulePolicy::Adaptive {
                inflation_threshold,
            } => format!("adaptive:{inflation_threshold}"),
        }
    }

    /// The mode a fault-free run executes under: the fixed mode, or the
    /// overlapped starting mode of the adaptive policy (which never
    /// degrades without fault inflation).
    pub fn healthy_mode(self) -> ScheduleMode {
        match self {
            SchedulePolicy::Fixed(mode) => mode,
            SchedulePolicy::Adaptive { .. } => ScheduleMode::overlapped(),
        }
    }
}

/// Has the observed committed makespan crossed the adaptive threshold
/// over the healthy prefix makespan?
#[inline]
pub(crate) fn inflation_exceeded(observed: u64, healthy: u64, threshold: f64) -> bool {
    observed as f64 > threshold * healthy as f64
}

/// One scheduled transmission, as reported by the traced overlapped run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapEvent {
    /// Index of the phase the message belongs to.
    pub phase: usize,
    /// The message as given (self-messages are filtered, never traced).
    pub msg: PMsg,
    /// Release time: when the source node had received all inflows of
    /// the previous phase.
    pub ready: u64,
    /// When the transmission actually started (≥ `ready`).
    pub start: u64,
    /// When the last flit arrived at `msg.dst`.
    pub end: u64,
}

impl PhaseSim {
    /// Simulate `phases` under `mode`. [`ScheduleMode::Phased`] calls
    /// [`PhaseSim::simulate_phases`] unchanged.
    pub fn simulate_phases_mode(&mut self, phases: &[Vec<PMsg>], mode: ScheduleMode) -> u64 {
        match mode {
            ScheduleMode::Phased => self.simulate_phases(phases),
            ScheduleMode::Overlapped(order) => self.simulate_phases_overlapped(phases, order),
        }
    }

    /// Overlapped makespan of `phases` (see the module docs for the
    /// readiness rule and ordering guarantees).
    pub fn simulate_phases_overlapped(&mut self, phases: &[Vec<PMsg>], order: OverlapOrder) -> u64 {
        self.overlapped_run(phases, order, |_| {})
    }

    /// Like [`PhaseSim::simulate_phases_overlapped`], additionally
    /// returning every scheduled transmission in processing order.
    pub fn simulate_phases_overlapped_traced(
        &mut self,
        phases: &[Vec<PMsg>],
        order: OverlapOrder,
    ) -> (u64, Vec<OverlapEvent>) {
        let mut events = Vec::new();
        let makespan = self.overlapped_run(phases, order, |e| events.push(e));
        (makespan, events)
    }

    fn overlapped_run(
        &mut self,
        phases: &[Vec<PMsg>],
        order: OverlapOrder,
        mut sink: impl FnMut(OverlapEvent),
    ) -> u64 {
        self.node_ready.fill(0);
        self.node_arrival.fill(0);
        // One shared link timeline across all phases — reservations from
        // phase k stay visible while phase k+1 schedules around them.
        self.begin_phase();
        let mut makespan = 0u64;
        for (k, phase) in phases.iter().enumerate() {
            if k > 0 {
                // Phase boundary: a node's next sends release once all
                // inflows of the previous phase have landed on it.
                for n in 0..self.node_ready.len() {
                    if self.node_arrival[n] > self.node_ready[n] {
                        self.node_ready[n] = self.node_arrival[n];
                    }
                }
            }
            // Identical filter + sort to the phased scheduler, so
            // `Sorted` reproduces its processing order exactly.
            self.scratch.clear();
            self.scratch
                .extend(phase.iter().copied().filter(|m| m.src != m.dst));
            self.scratch.sort_unstable();
            self.order.clear();
            self.order.extend(0..self.scratch.len() as u32);
            if order == OverlapOrder::LongestFirst {
                let mut perm = std::mem::take(&mut self.order);
                let (scratch, ready, mesh) = (&self.scratch, &self.node_ready, &self.mesh);
                perm.sort_by_key(|&i| {
                    let m = scratch[i as usize];
                    (ready[m.src], Reverse(mesh.hops(m.src, m.dst)), i)
                });
                self.order = perm;
            }
            for oi in 0..self.order.len() {
                let m = self.scratch[self.order[oi] as usize];
                let ready = self.node_ready[m.src];
                let mut hops = 0usize;
                let mut start = ready;
                for l in self.mesh.route_links(m.src, m.dst) {
                    hops += 1;
                    start = start.max(self.link_free_at(l.index()));
                }
                let end = start + self.mesh.cost.p2p(hops, m.bytes);
                for l in self.mesh.route_links(m.src, m.dst) {
                    self.reserve_link(l.index(), end);
                }
                if end > self.node_arrival[m.dst] {
                    self.node_arrival[m.dst] = end;
                }
                makespan = makespan.max(end);
                sink(OverlapEvent {
                    phase: k,
                    msg: m,
                    ready,
                    start,
                    end,
                });
            }
        }
        makespan
    }

    /// Replay precompiled phases under `mode` with every payload scaled
    /// by `byte_scale` — the batch-sweep fast path. Equals
    /// [`PhaseSim::simulate_phases_mode`] on the scaled message sets
    /// (uniform scaling preserves both the sorted order and the
    /// longest-first priority).
    pub fn run_cached_phases(
        &mut self,
        phases: &[CachedPhase],
        mode: ScheduleMode,
        byte_scale: u64,
    ) -> u64 {
        match mode {
            ScheduleMode::Phased => phases
                .iter()
                .map(|p| self.run_cached_scaled(p, byte_scale))
                .sum(),
            ScheduleMode::Overlapped(order) => {
                self.run_cached_overlapped(phases, order, byte_scale)
            }
        }
    }

    fn run_cached_overlapped(
        &mut self,
        phases: &[CachedPhase],
        order: OverlapOrder,
        byte_scale: u64,
    ) -> u64 {
        self.node_ready.fill(0);
        self.node_arrival.fill(0);
        self.begin_phase();
        let mut makespan = 0u64;
        for (k, phase) in phases.iter().enumerate() {
            if k > 0 {
                for n in 0..self.node_ready.len() {
                    if self.node_arrival[n] > self.node_ready[n] {
                        self.node_ready[n] = self.node_arrival[n];
                    }
                }
            }
            self.order.clear();
            self.order.extend(0..phase.bytes.len() as u32);
            if order == OverlapOrder::LongestFirst {
                let mut perm = std::mem::take(&mut self.order);
                let ready = &self.node_ready;
                perm.sort_by_key(|&i| {
                    let i = i as usize;
                    let hops = phase.offsets[i + 1] - phase.offsets[i];
                    (ready[phase.src[i] as usize], Reverse(hops), i)
                });
                self.order = perm;
            }
            for oi in 0..self.order.len() {
                let i = self.order[oi] as usize;
                let (lo, hi) = (phase.offsets[i] as usize, phase.offsets[i + 1] as usize);
                let mut start = self.node_ready[phase.src[i] as usize];
                for j in lo..hi {
                    start = start.max(self.link_free_at(phase.links[j] as usize));
                }
                let end = start + self.mesh.cost.p2p(hi - lo, phase.bytes[i] * byte_scale);
                for j in lo..hi {
                    self.reserve_link(phase.links[j] as usize, end);
                }
                let dst = phase.dst[i] as usize;
                if end > self.node_arrival[dst] {
                    self.node_arrival[dst] = end;
                }
                makespan = makespan.max(end);
            }
        }
        makespan
    }

    /// Healthy (fault-free) overlapped makespan of every phase prefix:
    /// entry `k` is the makespan after phases `0..=k` under `order` —
    /// the baseline [`SchedulePolicy::Adaptive`] measures inflation
    /// against. Entry `phases.len() - 1` equals
    /// [`PhaseSim::simulate_phases_overlapped`].
    pub fn simulate_phases_overlapped_prefix(
        &mut self,
        phases: &[Vec<PMsg>],
        order: OverlapOrder,
    ) -> Vec<u64> {
        let mut prefix = vec![0u64; phases.len()];
        let mut running = 0u64;
        self.overlapped_run(phases, order, |e| {
            running = running.max(e.end);
            prefix[e.phase] = running;
        });
        // Phases without events inherit the prefix makespan so far.
        let mut acc = 0u64;
        for v in prefix.iter_mut() {
            acc = acc.max(*v);
            *v = acc;
        }
        prefix
    }

    /// Simulate `phases` under `plan` with the overlapped scheduler:
    /// the resilient transport of
    /// [`PhaseSim::simulate_phases_faulty`] (outage deferral, XY→YX
    /// rerouting, drop/retry/backoff with escalation, receiver-side
    /// deduplication, black holes on permanently dead endpoints)
    /// threaded through the per-node ready/arrival timeline:
    ///
    /// * the run shares **one continuous clock**: outage windows and
    ///   death times are interpreted on absolute simulated time, not
    ///   per-phase time as in the phased engine (which restarts the
    ///   clock each phase);
    /// * a message releases at its source's readiness; only the
    ///   **delivering** transmission's arrival raises the destination's
    ///   readiness for the next phase — lost, black-holed and duplicate
    ///   transmissions waste bandwidth without carrying readiness;
    /// * each phase draws from its own PRNG stream (`seed + index`, the
    ///   same derivation as the phased engine) in processing order;
    /// * the report's `makespan` is the final clock; per-phase deltas
    ///   are absorbed so [`FaultReport`] semantics (wall clock,
    ///   delivered fraction) are unchanged.
    ///
    /// A [`FaultPlan::is_zero_fault`] plan takes none of the fault
    /// branches and is **bit-identical** to
    /// [`PhaseSim::simulate_phases_overlapped`] (pinned by property
    /// tests).
    pub fn simulate_phases_overlapped_faulty(
        &mut self,
        phases: &[Vec<PMsg>],
        plan: &FaultPlan,
        order: OverlapOrder,
    ) -> FaultReport {
        self.overlapped_faulty_driver(phases, plan, plan.seed, order, None)
    }

    /// Simulate `phases` under `plan` with the schedule chosen by
    /// `policy`: [`ScheduleMode::Phased`] dispatches to the untouched
    /// [`PhaseSim::simulate_phases_faulty`], overlapped modes to
    /// [`PhaseSim::simulate_phases_overlapped_faulty`], and
    /// [`SchedulePolicy::Adaptive`] runs overlapped with mid-run
    /// degradation to phased barriers (see [`SchedulePolicy`]).
    pub fn simulate_phases_faulty_policy(
        &mut self,
        phases: &[Vec<PMsg>],
        plan: &FaultPlan,
        policy: SchedulePolicy,
    ) -> FaultReport {
        match policy {
            SchedulePolicy::Fixed(ScheduleMode::Phased) => {
                self.simulate_phases_faulty(phases, plan)
            }
            SchedulePolicy::Fixed(ScheduleMode::Overlapped(order)) => {
                self.simulate_phases_overlapped_faulty(phases, plan, order)
            }
            SchedulePolicy::Adaptive {
                inflation_threshold,
            } => {
                let prefix = self.simulate_phases_overlapped_prefix(phases, OverlapOrder::Sorted);
                self.overlapped_faulty_driver(
                    phases,
                    plan,
                    plan.seed,
                    OverlapOrder::Sorted,
                    Some((inflation_threshold, &prefix)),
                )
            }
        }
    }

    /// The overlapped-faulty run: one shared link timeline and clock,
    /// per-phase PRNG streams, optional adaptive degradation.
    pub(crate) fn overlapped_faulty_driver(
        &mut self,
        phases: &[Vec<PMsg>],
        plan: &FaultPlan,
        seed: u64,
        order: OverlapOrder,
        adapt: Option<(f64, &[u64])>,
    ) -> FaultReport {
        self.node_ready.fill(0);
        self.node_arrival.fill(0);
        self.begin_phase();
        let mut total = FaultReport::default();
        let mut clock = 0u64;
        let mut barrier = false;
        for (k, phase) in phases.iter().enumerate() {
            let mut rep = self.overlapped_faulty_step(
                k > 0,
                phase,
                plan,
                seed.wrapping_add(k as u64),
                order,
                barrier,
                clock,
            );
            // Re-express the phase makespan as the clock advance, so
            // absorbed reports sum to the final clock.
            let advanced = clock.max(rep.makespan);
            rep.makespan = advanced - clock;
            clock = advanced;
            total.absorb(&rep);
            if let Some((threshold, prefix)) = adapt {
                if !barrier && inflation_exceeded(clock, prefix[k], threshold) {
                    barrier = true;
                    total.downgrades += 1;
                }
            }
        }
        total
    }

    /// One phase of the overlapped-faulty run. `clock` is the committed
    /// clock at entry; the returned report's `makespan` is the **maximum
    /// absolute end time** inside this phase (0 when nothing was sent) —
    /// the driver converts it to a clock delta. With `barrier` set
    /// (adaptive degradation), the phase boundary becomes a full
    /// barrier at `clock` instead of the per-node arrival merge.
    #[allow(clippy::too_many_arguments)]
    fn overlapped_faulty_step(
        &mut self,
        merge: bool,
        msgs: &[PMsg],
        plan: &FaultPlan,
        seed: u64,
        order: OverlapOrder,
        barrier: bool,
        clock: u64,
    ) -> FaultReport {
        if merge {
            if barrier {
                // Degraded mode: every node waits for the whole
                // previous phase (clock ≥ every arrival).
                self.node_ready.fill(clock);
            } else {
                for n in 0..self.node_ready.len() {
                    if self.node_arrival[n] > self.node_ready[n] {
                        self.node_ready[n] = self.node_arrival[n];
                    }
                }
            }
        }
        self.scratch.clear();
        self.scratch
            .extend(msgs.iter().copied().filter(|m| m.src != m.dst));
        self.scratch.sort_unstable();
        self.order.clear();
        self.order.extend(0..self.scratch.len() as u32);
        if order == OverlapOrder::LongestFirst {
            let mut perm = std::mem::take(&mut self.order);
            let (scratch, ready, mesh) = (&self.scratch, &self.node_ready, &self.mesh);
            perm.sort_by_key(|&i| {
                let m = scratch[i as usize];
                (ready[m.src], Reverse(mesh.hops(m.src, m.dst)), i)
            });
            self.order = perm;
        }
        let mut rng = XorShift64::new(seed);
        let mut rep = FaultReport {
            messages: self.scratch.len(),
            ..FaultReport::default()
        };
        let max_attempts = if plan.retry.enabled {
            plan.retry.max_attempts.max(1)
        } else {
            1
        };
        for oi in 0..self.order.len() {
            let m = self.scratch[self.order[oi] as usize];
            // Release at the source's readiness instead of 0 — the only
            // scheduling difference from the phased transport.
            let mut next_send = self.node_ready[m.src];
            let mut attempt = 0u32;
            loop {
                let alive = plan
                    .node_alive_after(m.src, next_send)
                    .max(plan.node_alive_after(m.dst, next_send));
                if alive == u64::MAX {
                    rep.lost += 1;
                    rep.black_holes += 1;
                    break;
                }
                if alive > next_send {
                    rep.deferrals += 1;
                    next_send = alive;
                    continue;
                }
                let (start, hops, xy_dead) =
                    self.scan_route(self.mesh.route_links(m.src, m.dst), next_send, plan);
                let (use_yx, start, hops) = if xy_dead.is_none() {
                    (false, start, hops)
                } else {
                    let (start_yx, hops_yx, yx_dead) =
                        self.scan_route(self.mesh.route_links_yx(m.src, m.dst), next_send, plan);
                    if let Some(yx_until) = yx_dead {
                        rep.deferrals += 1;
                        next_send = xy_dead
                            .unwrap_or(u64::MAX)
                            .min(yx_until)
                            .max(next_send.saturating_add(1));
                        continue;
                    }
                    rep.reroutes += 1;
                    (true, start_yx, hops_yx)
                };
                let route = |mesh: &Mesh2D| {
                    if use_yx {
                        mesh.route_links_yx(m.src, m.dst)
                    } else {
                        mesh.route_links(m.src, m.dst)
                    }
                };
                attempt += 1;
                rep.attempts += 1;
                let end = self.transmit(route(&self.mesh), start, hops, m.bytes);
                rep.makespan = rep.makespan.max(end);
                let escalated = plan.retry.enabled && attempt >= max_attempts;
                let unlucky = rng.chance(plan.drop_prob);
                if unlucky && !escalated {
                    if !plan.retry.enabled {
                        rep.lost += 1;
                        break;
                    }
                    rep.retries += 1;
                    next_send = end.saturating_add(plan.retry.backoff_delay(attempt));
                    continue;
                }
                if unlucky && escalated {
                    rep.escalations += 1;
                }
                rep.delivered += 1;
                // Only the delivering transmission carries readiness:
                // the payload is consumed at `end`, and the duplicate
                // below is suppressed at the receiver.
                if end > self.node_arrival[m.dst] {
                    self.node_arrival[m.dst] = end;
                }
                if rng.chance(plan.dup_prob) {
                    rep.duplicates += 1;
                    rep.attempts += 1;
                    let end2 = self.transmit(route(&self.mesh), end, hops, m.bytes);
                    rep.makespan = rep.makespan.max(end2);
                }
                break;
            }
        }
        rep
    }

    /// [`PhaseSim::simulate_phases_recovering`] under the overlapped
    /// scheduler: checkpoint/rollback/replay and survivor folding on the
    /// overlapped timeline. Checkpoints additionally snapshot the
    /// per-node ready/arrival state ([`OverlapCheckpoint`]), so a
    /// rollback restores the exact readiness frontier the checkpointed
    /// boundary had. Zero-death plans are bit-identical to
    /// [`PhaseSim::simulate_phases_overlapped_faulty`].
    pub fn simulate_phases_overlapped_recovering(
        &mut self,
        phases: &[Vec<PMsg>],
        plan: &FaultPlan,
        policy: &CheckpointPolicy,
        order: OverlapOrder,
    ) -> FaultReport {
        self.overlapped_recovering_driver(phases, plan, plan.seed, policy, order, None)
    }

    /// Policy dispatch for the recovering engine, mirroring
    /// [`PhaseSim::simulate_phases_faulty_policy`].
    pub fn simulate_phases_recovering_policy(
        &mut self,
        phases: &[Vec<PMsg>],
        plan: &FaultPlan,
        ckpt: &CheckpointPolicy,
        policy: SchedulePolicy,
    ) -> FaultReport {
        match policy {
            SchedulePolicy::Fixed(ScheduleMode::Phased) => {
                self.simulate_phases_recovering(phases, plan, ckpt)
            }
            SchedulePolicy::Fixed(ScheduleMode::Overlapped(order)) => {
                self.simulate_phases_overlapped_recovering(phases, plan, ckpt, order)
            }
            SchedulePolicy::Adaptive {
                inflation_threshold,
            } => {
                let prefix = self.simulate_phases_overlapped_prefix(phases, OverlapOrder::Sorted);
                self.overlapped_recovering_driver(
                    phases,
                    plan,
                    plan.seed,
                    ckpt,
                    OverlapOrder::Sorted,
                    Some((inflation_threshold, &prefix)),
                )
            }
        }
    }

    /// The overlapped checkpoint/rollback driver — the same structure as
    /// the phased recovering loop, with the overlapped step, overlapped
    /// checkpoints and (optionally) adaptive degradation.
    pub(crate) fn overlapped_recovering_driver(
        &mut self,
        phases: &[Vec<PMsg>],
        plan: &FaultPlan,
        seed: u64,
        policy: &CheckpointPolicy,
        order: OverlapOrder,
        adapt: Option<(f64, &[u64])>,
    ) -> FaultReport {
        let interval = policy.interval.max(1);
        let ring_cap = policy.ring.max(1);
        let (px, py) = (self.mesh.px, self.mesh.py);
        // Deaths are survived by rollback, not black-holed by the
        // transport — same split as the phased recovering driver.
        let inner = FaultPlan {
            node_deaths: Vec::new(),
            ..plan.clone()
        };
        self.node_ready.fill(0);
        self.node_arrival.fill(0);
        self.begin_phase();
        let mut total = FaultReport::default();
        let mut handled = vec![false; plan.node_deaths.len()];
        let mut dead: Vec<usize> = Vec::new();
        let mut ring: VecDeque<OverlapCheckpoint> = VecDeque::new();
        let mut now = 0u64;
        let mut barrier = false;
        let mut frontier = 0usize;
        let mut i = 0usize;
        loop {
            let mut phase_end = now;
            let mut phase_rep: Option<(FaultReport, usize)> = None;
            if i < phases.len() {
                if i % interval == 0
                    && ring
                        .back()
                        .is_none_or(|c| c.base.phase != i || c.base.elapsed != now)
                {
                    if ring.len() == ring_cap {
                        ring.pop_front();
                    }
                    ring.push_back(self.checkpoint_overlapped(i, now, total, barrier));
                    total.recovery.checkpoints += 1;
                    total.recovery.checkpoint_overhead_ns += policy.cost_ns;
                }
                let mut folded = Vec::new();
                let mut dropped = 0usize;
                let msgs: &[PMsg] = if dead.is_empty() {
                    &phases[i]
                } else {
                    for m in &phases[i] {
                        let src = if dead.contains(&m.src) {
                            fold_target(px, py, m.src, &dead)
                        } else {
                            Some(m.src)
                        };
                        let dst = if dead.contains(&m.dst) {
                            fold_target(px, py, m.dst, &dead)
                        } else {
                            Some(m.dst)
                        };
                        match (src, dst) {
                            (Some(src), Some(dst)) => folded.push(PMsg { src, dst, ..*m }),
                            _ => dropped += 1,
                        }
                    }
                    &folded
                };
                let mut rep = self.overlapped_faulty_step(
                    i > 0,
                    msgs,
                    &inner,
                    seed.wrapping_add(i as u64),
                    order,
                    barrier,
                    now,
                );
                phase_end = now.max(rep.makespan);
                rep.makespan = phase_end - now;
                phase_rep = Some((rep, dropped));
            }
            // Deaths are on the same absolute clock as the schedule.
            let visible = plan
                .node_deaths
                .iter()
                .enumerate()
                .filter(|(k, d)| {
                    !handled[*k]
                        && if phase_rep.is_some() {
                            plan.detection_time(d.t) <= phase_end
                        } else {
                            d.t < now
                        }
                })
                .min_by_key(|(_, d)| (d.t, d.node));
            if let Some((k, d)) = visible {
                handled[k] = true;
                total.recovery.detected += 1;
                if !dead.contains(&d.node) {
                    dead.push(d.node);
                    total.recovery.folded_nodes += 1;
                }
                let pos = ring
                    .iter()
                    .rposition(|c| c.base.elapsed <= d.t)
                    .unwrap_or(0);
                ring.truncate(pos + 1);
                let c = ring.back().expect("phase 0 is always checkpointed");
                total.recovery.lost_work_ns += phase_end - c.base.elapsed;
                let recovery = total.recovery;
                total = c.base.report;
                total.recovery = recovery;
                total.recovery.rollbacks += 1;
                now = c.base.elapsed;
                i = c.base.phase;
                barrier = c.barrier;
                self.restore_overlapped(c);
                continue;
            }
            let Some((rep, dropped)) = phase_rep else {
                break;
            };
            total.absorb(&rep);
            total.messages += dropped;
            total.lost += dropped;
            total.black_holes += dropped as u64;
            now = phase_end;
            if let Some((threshold, prefix)) = adapt {
                if !barrier && inflation_exceeded(now, prefix[i], threshold) {
                    barrier = true;
                    total.downgrades += 1;
                }
            }
            if i < frontier {
                total.recovery.replayed_phases += 1;
            } else {
                frontier = i + 1;
            }
            i += 1;
        }
        total.recovery.deaths = handled.iter().filter(|&&h| h).count();
        total
    }
}

/// Sweep `byte_scales` over one compiled plan under `mode`, fanning out
/// across `threads` workers (each with its own [`PhaseSim`] scratch).
/// Results are in input order; entry `i` equals
/// `PhaseSim::run_cached_phases(phases, mode, byte_scales[i])`.
pub fn par_schedule_sweep(
    mesh: &Mesh2D,
    phases: &[CachedPhase],
    mode: ScheduleMode,
    byte_scales: &[u64],
    threads: usize,
) -> Vec<u64> {
    par_sweep_with(
        byte_scales,
        threads,
        || PhaseSim::new(mesh.clone()),
        |sim, &scale| sim.run_cached_phases(phases, mode, scale),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh2D;
    use crate::model::CostModel;

    fn mesh() -> Mesh2D {
        Mesh2D::new(4, 2, CostModel::paragon())
    }

    fn pm(src: usize, dst: usize, bytes: u64) -> PMsg {
        PMsg { src, dst, bytes }
    }

    #[test]
    fn phased_mode_is_simulate_phases() {
        let phases = vec![
            vec![pm(0, 3, 64), pm(4, 7, 32), pm(2, 2, 9999)],
            vec![pm(3, 0, 128), pm(7, 4, 8)],
        ];
        let mut a = PhaseSim::new(mesh());
        let mut b = PhaseSim::new(mesh());
        assert_eq!(
            a.simulate_phases_mode(&phases, ScheduleMode::Phased),
            b.simulate_phases(&phases)
        );
    }

    #[test]
    fn overlap_pipelines_independent_chains() {
        // Phase 1: a long transfer 0→3 and a short one 4→5 on disjoint
        // links. Phase 2: 5→4 depends only on the short chain, so it
        // overlaps with the long transfer instead of waiting for it.
        let m = mesh();
        let phases = vec![vec![pm(0, 3, 4096), pm(4, 5, 64)], vec![pm(5, 4, 64)]];
        let mut sim = PhaseSim::new(m.clone());
        let phased = sim.simulate_phases(&phases);
        let (over, events) = sim.simulate_phases_overlapped_traced(&phases, OverlapOrder::Sorted);
        assert!(over < phased, "expected overlap win: {over} vs {phased}");
        let long = m.cost.p2p(3, 4096);
        let short = m.cost.p2p(1, 64);
        assert_eq!(phased, long + short);
        assert_eq!(over, long.max(2 * short));
        // The dependent message released exactly when its source's
        // inflow arrived, not at the end of the phase.
        let e = events.iter().find(|e| e.phase == 1).unwrap();
        assert_eq!(e.ready, short);
        assert_eq!(e.start, short);
    }

    #[test]
    fn self_messages_filtered_identically() {
        let with_self = vec![
            vec![pm(0, 0, 1_000_000), pm(1, 2, 64)],
            vec![pm(2, 1, 64), pm(5, 5, 1_000_000)],
        ];
        let without: Vec<Vec<PMsg>> = with_self
            .iter()
            .map(|p| p.iter().copied().filter(|m| m.src != m.dst).collect())
            .collect();
        let mut sim = PhaseSim::new(mesh());
        for order in [OverlapOrder::Sorted, OverlapOrder::LongestFirst] {
            let a = sim.simulate_phases_overlapped(&with_self, order);
            let b = sim.simulate_phases_overlapped(&without, order);
            assert_eq!(a, b);
            let (_, events) = sim.simulate_phases_overlapped_traced(&with_self, order);
            assert!(events.iter().all(|e| e.msg.src != e.msg.dst));
            assert_eq!(events.len(), 2);
        }
    }

    #[test]
    fn empty_and_self_only_plans_are_free() {
        let mut sim = PhaseSim::new(mesh());
        assert_eq!(sim.simulate_phases_overlapped(&[], OverlapOrder::Sorted), 0);
        let selfies = vec![vec![pm(0, 0, 7)], vec![], vec![pm(3, 3, 9)]];
        assert_eq!(
            sim.simulate_phases_overlapped(&selfies, OverlapOrder::Sorted),
            0
        );
    }

    #[test]
    fn cached_replay_matches_direct() {
        let m = mesh();
        let phases = [
            vec![pm(0, 7, 512), pm(1, 6, 64), pm(4, 2, 32), pm(3, 3, 5)],
            vec![pm(7, 0, 256), pm(6, 1, 128)],
            vec![pm(2, 4, 96), pm(0, 5, 64)],
        ];
        let cached: Vec<CachedPhase> = phases.iter().map(|p| CachedPhase::new(&m, p)).collect();
        let mut sim = PhaseSim::new(m.clone());
        for scale in [1u64, 3, 17] {
            let scaled: Vec<Vec<PMsg>> = phases
                .iter()
                .map(|p| {
                    p.iter()
                        .map(|&PMsg { src, dst, bytes }| pm(src, dst, bytes * scale))
                        .collect()
                })
                .collect();
            for mode in [
                ScheduleMode::Phased,
                ScheduleMode::overlapped(),
                ScheduleMode::Overlapped(OverlapOrder::LongestFirst),
            ] {
                assert_eq!(
                    sim.run_cached_phases(&cached, mode, scale),
                    sim.simulate_phases_mode(&scaled, mode),
                    "mode {mode:?} scale {scale}"
                );
            }
        }
    }

    #[test]
    fn par_schedule_sweep_matches_serial() {
        let m = mesh();
        let phases = [
            vec![pm(0, 7, 512), pm(1, 6, 64)],
            vec![pm(7, 0, 256), pm(6, 1, 128)],
        ];
        let cached: Vec<CachedPhase> = phases.iter().map(|p| CachedPhase::new(&m, p)).collect();
        let scales = [1u64, 2, 4, 8, 16];
        let mut sim = PhaseSim::new(m.clone());
        for mode in [ScheduleMode::Phased, ScheduleMode::overlapped()] {
            let expect: Vec<u64> = scales
                .iter()
                .map(|&s| sim.run_cached_phases(&cached, mode, s))
                .collect();
            for threads in [1, 2, 4] {
                assert_eq!(
                    par_schedule_sweep(&m, &cached, mode, &scales, threads),
                    expect
                );
            }
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [
            ScheduleMode::Phased,
            ScheduleMode::overlapped(),
            ScheduleMode::Overlapped(OverlapOrder::LongestFirst),
        ] {
            assert_eq!(ScheduleMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(ScheduleMode::parse("bogus"), None);
        assert_eq!(ScheduleMode::default(), ScheduleMode::Phased);
    }
}
