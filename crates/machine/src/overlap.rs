//! Dependency-aware overlapped execution of multi-phase plans.
//!
//! [`PhaseSim::simulate_phases`] runs phases as strict barriers: every
//! message of phase k+1 waits for the globally slowest message of phase
//! k. The overlapped scheduler in this module relaxes the barrier to the
//! true dataflow dependence: a phase-k+1 message becomes *ready* once its
//! **source node** has received all of its phase-k inflows, and ready
//! messages are list-scheduled greedily onto the same per-link timelines
//! the phased engine uses.
//!
//! # Determinism and the ≤-phased guarantee
//!
//! Greedy list scheduling suffers from Graham anomalies: processing
//! messages in an arbitrary priority order can produce a *longer*
//! schedule than the barriered one. The default
//! [`OverlapOrder::Sorted`] therefore processes messages in exactly the
//! phased engine's order — phase-major, within each phase the sorted
//! [`PMsg`] total order — and uses readiness only as a per-message
//! release time. Under that order a simple induction holds: every
//! message's overlapped start is ≤ its phased start (its release time is
//! ≤ the end of the previous phase, and every earlier-processed message
//! finished no later than it did in the phased schedule), so the
//! overlapped makespan is **structurally ≤ the phased makespan** and a
//! single-phase plan schedules bit-identically under both modes.
//!
//! [`OverlapOrder::LongestFirst`] is the true priority-queue order from
//! the issue — (ready time, longest route first, [`PMsg`] order) — which
//! can win on contended meshes but carries no ≤ guarantee; benches score
//! it against the default rather than gating on it.

use crate::mesh::Mesh2D;
use crate::phasesim::{CachedPhase, PhaseSim};
use crate::sweep::par_sweep_with;
use crate::PMsg;
use std::cmp::Reverse;

/// How a multi-phase plan is executed on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScheduleMode {
    /// Strict barriers between phases (the historical behaviour);
    /// bit-identical to [`PhaseSim::simulate_phases`].
    #[default]
    Phased,
    /// Software-pipelined: messages release as soon as their source
    /// node's inflows from the previous phase have arrived.
    Overlapped(OverlapOrder),
}

impl ScheduleMode {
    /// The default overlapped mode ([`OverlapOrder::Sorted`]).
    pub fn overlapped() -> Self {
        ScheduleMode::Overlapped(OverlapOrder::Sorted)
    }

    /// Parse a CLI spelling: `phased`, `overlapped`, `overlapped-longest`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "phased" => Some(ScheduleMode::Phased),
            "overlapped" => Some(ScheduleMode::Overlapped(OverlapOrder::Sorted)),
            "overlapped-longest" => Some(ScheduleMode::Overlapped(OverlapOrder::LongestFirst)),
            _ => None,
        }
    }

    /// The CLI spelling accepted by [`ScheduleMode::parse`].
    pub fn label(self) -> &'static str {
        match self {
            ScheduleMode::Phased => "phased",
            ScheduleMode::Overlapped(OverlapOrder::Sorted) => "overlapped",
            ScheduleMode::Overlapped(OverlapOrder::LongestFirst) => "overlapped-longest",
        }
    }
}

/// Intra-phase processing order of the overlapped scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverlapOrder {
    /// The phased engine's order (sorted [`PMsg`] order within each
    /// phase). Guarantees overlapped makespan ≤ phased makespan.
    #[default]
    Sorted,
    /// Priority order (ready time, longest route first, [`PMsg`] order).
    /// A heuristic for contended meshes; no ≤-phased guarantee.
    LongestFirst,
}

/// One scheduled transmission, as reported by the traced overlapped run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapEvent {
    /// Index of the phase the message belongs to.
    pub phase: usize,
    /// The message as given (self-messages are filtered, never traced).
    pub msg: PMsg,
    /// Release time: when the source node had received all inflows of
    /// the previous phase.
    pub ready: u64,
    /// When the transmission actually started (≥ `ready`).
    pub start: u64,
    /// When the last flit arrived at `msg.dst`.
    pub end: u64,
}

impl PhaseSim {
    /// Simulate `phases` under `mode`. [`ScheduleMode::Phased`] calls
    /// [`PhaseSim::simulate_phases`] unchanged.
    pub fn simulate_phases_mode(&mut self, phases: &[Vec<PMsg>], mode: ScheduleMode) -> u64 {
        match mode {
            ScheduleMode::Phased => self.simulate_phases(phases),
            ScheduleMode::Overlapped(order) => self.simulate_phases_overlapped(phases, order),
        }
    }

    /// Overlapped makespan of `phases` (see the module docs for the
    /// readiness rule and ordering guarantees).
    pub fn simulate_phases_overlapped(&mut self, phases: &[Vec<PMsg>], order: OverlapOrder) -> u64 {
        self.overlapped_run(phases, order, |_| {})
    }

    /// Like [`PhaseSim::simulate_phases_overlapped`], additionally
    /// returning every scheduled transmission in processing order.
    pub fn simulate_phases_overlapped_traced(
        &mut self,
        phases: &[Vec<PMsg>],
        order: OverlapOrder,
    ) -> (u64, Vec<OverlapEvent>) {
        let mut events = Vec::new();
        let makespan = self.overlapped_run(phases, order, |e| events.push(e));
        (makespan, events)
    }

    fn overlapped_run(
        &mut self,
        phases: &[Vec<PMsg>],
        order: OverlapOrder,
        mut sink: impl FnMut(OverlapEvent),
    ) -> u64 {
        self.node_ready.fill(0);
        self.node_arrival.fill(0);
        // One shared link timeline across all phases — reservations from
        // phase k stay visible while phase k+1 schedules around them.
        self.begin_phase();
        let mut makespan = 0u64;
        for (k, phase) in phases.iter().enumerate() {
            if k > 0 {
                // Phase boundary: a node's next sends release once all
                // inflows of the previous phase have landed on it.
                for n in 0..self.node_ready.len() {
                    if self.node_arrival[n] > self.node_ready[n] {
                        self.node_ready[n] = self.node_arrival[n];
                    }
                }
            }
            // Identical filter + sort to the phased scheduler, so
            // `Sorted` reproduces its processing order exactly.
            self.scratch.clear();
            self.scratch
                .extend(phase.iter().copied().filter(|m| m.src != m.dst));
            self.scratch.sort_unstable();
            self.order.clear();
            self.order.extend(0..self.scratch.len() as u32);
            if order == OverlapOrder::LongestFirst {
                let mut perm = std::mem::take(&mut self.order);
                let (scratch, ready, mesh) = (&self.scratch, &self.node_ready, &self.mesh);
                perm.sort_by_key(|&i| {
                    let m = scratch[i as usize];
                    (ready[m.src], Reverse(mesh.hops(m.src, m.dst)), i)
                });
                self.order = perm;
            }
            for oi in 0..self.order.len() {
                let m = self.scratch[self.order[oi] as usize];
                let ready = self.node_ready[m.src];
                let mut hops = 0usize;
                let mut start = ready;
                for l in self.mesh.route_links(m.src, m.dst) {
                    hops += 1;
                    start = start.max(self.link_free_at(l.index()));
                }
                let end = start + self.mesh.cost.p2p(hops, m.bytes);
                for l in self.mesh.route_links(m.src, m.dst) {
                    self.reserve_link(l.index(), end);
                }
                if end > self.node_arrival[m.dst] {
                    self.node_arrival[m.dst] = end;
                }
                makespan = makespan.max(end);
                sink(OverlapEvent {
                    phase: k,
                    msg: m,
                    ready,
                    start,
                    end,
                });
            }
        }
        makespan
    }

    /// Replay precompiled phases under `mode` with every payload scaled
    /// by `byte_scale` — the batch-sweep fast path. Equals
    /// [`PhaseSim::simulate_phases_mode`] on the scaled message sets
    /// (uniform scaling preserves both the sorted order and the
    /// longest-first priority).
    pub fn run_cached_phases(
        &mut self,
        phases: &[CachedPhase],
        mode: ScheduleMode,
        byte_scale: u64,
    ) -> u64 {
        match mode {
            ScheduleMode::Phased => phases
                .iter()
                .map(|p| self.run_cached_scaled(p, byte_scale))
                .sum(),
            ScheduleMode::Overlapped(order) => {
                self.run_cached_overlapped(phases, order, byte_scale)
            }
        }
    }

    fn run_cached_overlapped(
        &mut self,
        phases: &[CachedPhase],
        order: OverlapOrder,
        byte_scale: u64,
    ) -> u64 {
        self.node_ready.fill(0);
        self.node_arrival.fill(0);
        self.begin_phase();
        let mut makespan = 0u64;
        for (k, phase) in phases.iter().enumerate() {
            if k > 0 {
                for n in 0..self.node_ready.len() {
                    if self.node_arrival[n] > self.node_ready[n] {
                        self.node_ready[n] = self.node_arrival[n];
                    }
                }
            }
            self.order.clear();
            self.order.extend(0..phase.bytes.len() as u32);
            if order == OverlapOrder::LongestFirst {
                let mut perm = std::mem::take(&mut self.order);
                let ready = &self.node_ready;
                perm.sort_by_key(|&i| {
                    let i = i as usize;
                    let hops = phase.offsets[i + 1] - phase.offsets[i];
                    (ready[phase.src[i] as usize], Reverse(hops), i)
                });
                self.order = perm;
            }
            for oi in 0..self.order.len() {
                let i = self.order[oi] as usize;
                let (lo, hi) = (phase.offsets[i] as usize, phase.offsets[i + 1] as usize);
                let mut start = self.node_ready[phase.src[i] as usize];
                for j in lo..hi {
                    start = start.max(self.link_free_at(phase.links[j] as usize));
                }
                let end = start + self.mesh.cost.p2p(hi - lo, phase.bytes[i] * byte_scale);
                for j in lo..hi {
                    self.reserve_link(phase.links[j] as usize, end);
                }
                let dst = phase.dst[i] as usize;
                if end > self.node_arrival[dst] {
                    self.node_arrival[dst] = end;
                }
                makespan = makespan.max(end);
            }
        }
        makespan
    }
}

/// Sweep `byte_scales` over one compiled plan under `mode`, fanning out
/// across `threads` workers (each with its own [`PhaseSim`] scratch).
/// Results are in input order; entry `i` equals
/// `PhaseSim::run_cached_phases(phases, mode, byte_scales[i])`.
pub fn par_schedule_sweep(
    mesh: &Mesh2D,
    phases: &[CachedPhase],
    mode: ScheduleMode,
    byte_scales: &[u64],
    threads: usize,
) -> Vec<u64> {
    par_sweep_with(
        byte_scales,
        threads,
        || PhaseSim::new(mesh.clone()),
        |sim, &scale| sim.run_cached_phases(phases, mode, scale),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh2D;
    use crate::model::CostModel;

    fn mesh() -> Mesh2D {
        Mesh2D::new(4, 2, CostModel::paragon())
    }

    fn pm(src: usize, dst: usize, bytes: u64) -> PMsg {
        PMsg { src, dst, bytes }
    }

    #[test]
    fn phased_mode_is_simulate_phases() {
        let phases = vec![
            vec![pm(0, 3, 64), pm(4, 7, 32), pm(2, 2, 9999)],
            vec![pm(3, 0, 128), pm(7, 4, 8)],
        ];
        let mut a = PhaseSim::new(mesh());
        let mut b = PhaseSim::new(mesh());
        assert_eq!(
            a.simulate_phases_mode(&phases, ScheduleMode::Phased),
            b.simulate_phases(&phases)
        );
    }

    #[test]
    fn overlap_pipelines_independent_chains() {
        // Phase 1: a long transfer 0→3 and a short one 4→5 on disjoint
        // links. Phase 2: 5→4 depends only on the short chain, so it
        // overlaps with the long transfer instead of waiting for it.
        let m = mesh();
        let phases = vec![vec![pm(0, 3, 4096), pm(4, 5, 64)], vec![pm(5, 4, 64)]];
        let mut sim = PhaseSim::new(m.clone());
        let phased = sim.simulate_phases(&phases);
        let (over, events) = sim.simulate_phases_overlapped_traced(&phases, OverlapOrder::Sorted);
        assert!(over < phased, "expected overlap win: {over} vs {phased}");
        let long = m.cost.p2p(3, 4096);
        let short = m.cost.p2p(1, 64);
        assert_eq!(phased, long + short);
        assert_eq!(over, long.max(2 * short));
        // The dependent message released exactly when its source's
        // inflow arrived, not at the end of the phase.
        let e = events.iter().find(|e| e.phase == 1).unwrap();
        assert_eq!(e.ready, short);
        assert_eq!(e.start, short);
    }

    #[test]
    fn self_messages_filtered_identically() {
        let with_self = vec![
            vec![pm(0, 0, 1_000_000), pm(1, 2, 64)],
            vec![pm(2, 1, 64), pm(5, 5, 1_000_000)],
        ];
        let without: Vec<Vec<PMsg>> = with_self
            .iter()
            .map(|p| p.iter().copied().filter(|m| m.src != m.dst).collect())
            .collect();
        let mut sim = PhaseSim::new(mesh());
        for order in [OverlapOrder::Sorted, OverlapOrder::LongestFirst] {
            let a = sim.simulate_phases_overlapped(&with_self, order);
            let b = sim.simulate_phases_overlapped(&without, order);
            assert_eq!(a, b);
            let (_, events) = sim.simulate_phases_overlapped_traced(&with_self, order);
            assert!(events.iter().all(|e| e.msg.src != e.msg.dst));
            assert_eq!(events.len(), 2);
        }
    }

    #[test]
    fn empty_and_self_only_plans_are_free() {
        let mut sim = PhaseSim::new(mesh());
        assert_eq!(sim.simulate_phases_overlapped(&[], OverlapOrder::Sorted), 0);
        let selfies = vec![vec![pm(0, 0, 7)], vec![], vec![pm(3, 3, 9)]];
        assert_eq!(
            sim.simulate_phases_overlapped(&selfies, OverlapOrder::Sorted),
            0
        );
    }

    #[test]
    fn cached_replay_matches_direct() {
        let m = mesh();
        let phases = [
            vec![pm(0, 7, 512), pm(1, 6, 64), pm(4, 2, 32), pm(3, 3, 5)],
            vec![pm(7, 0, 256), pm(6, 1, 128)],
            vec![pm(2, 4, 96), pm(0, 5, 64)],
        ];
        let cached: Vec<CachedPhase> = phases.iter().map(|p| CachedPhase::new(&m, p)).collect();
        let mut sim = PhaseSim::new(m.clone());
        for scale in [1u64, 3, 17] {
            let scaled: Vec<Vec<PMsg>> = phases
                .iter()
                .map(|p| {
                    p.iter()
                        .map(|&PMsg { src, dst, bytes }| pm(src, dst, bytes * scale))
                        .collect()
                })
                .collect();
            for mode in [
                ScheduleMode::Phased,
                ScheduleMode::overlapped(),
                ScheduleMode::Overlapped(OverlapOrder::LongestFirst),
            ] {
                assert_eq!(
                    sim.run_cached_phases(&cached, mode, scale),
                    sim.simulate_phases_mode(&scaled, mode),
                    "mode {mode:?} scale {scale}"
                );
            }
        }
    }

    #[test]
    fn par_schedule_sweep_matches_serial() {
        let m = mesh();
        let phases = [
            vec![pm(0, 7, 512), pm(1, 6, 64)],
            vec![pm(7, 0, 256), pm(6, 1, 128)],
        ];
        let cached: Vec<CachedPhase> = phases.iter().map(|p| CachedPhase::new(&m, p)).collect();
        let scales = [1u64, 2, 4, 8, 16];
        let mut sim = PhaseSim::new(m.clone());
        for mode in [ScheduleMode::Phased, ScheduleMode::overlapped()] {
            let expect: Vec<u64> = scales
                .iter()
                .map(|&s| sim.run_cached_phases(&cached, mode, s))
                .collect();
            for threads in [1, 2, 4] {
                assert_eq!(
                    par_schedule_sweep(&m, &cached, mode, &scales, threads),
                    expect
                );
            }
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [
            ScheduleMode::Phased,
            ScheduleMode::overlapped(),
            ScheduleMode::Overlapped(OverlapOrder::LongestFirst),
        ] {
            assert_eq!(ScheduleMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(ScheduleMode::parse("bogus"), None);
        assert_eq!(ScheduleMode::default(), ScheduleMode::Phased);
    }
}
