//! Software collectives on the mesh.
//!
//! The Paragon has no control network, so macro-communications compile to
//! *structured phases* of point-to-point messages: a partial broadcast
//! along a grid axis becomes a binomial tree inside each row/column, a
//! translation a single shift phase, a reduction the mirrored tree. These
//! are the implementations the paper's step-2(a) assumes exist when it
//! declares axis-parallel macro-communications "efficient".

use crate::mesh::Mesh2D;
use crate::model::PMsg;

/// Binomial-tree broadcast inside every row (axis 0): the column-`0`
/// member of each row holds the value and all row members receive it.
/// Returns the simulated time.
pub fn broadcast_rows_time(mesh: &Mesh2D, bytes: u64) -> u64 {
    let mut phases: Vec<Vec<PMsg>> = Vec::new();
    // Recursive *halving*: each holder forwards to the middle of its
    // segment, so the messages of one round use disjoint row links (a
    // doubling schedule would stack all round-r messages on the same
    // wormhole links and serialize).
    let mut stride = 1usize;
    while stride * 2 < mesh.px {
        stride *= 2;
    }
    while stride >= 1 {
        let mut phase = Vec::new();
        for y in 0..mesh.py {
            let mut x = 0;
            while x + stride < mesh.px {
                phase.push(PMsg {
                    src: mesh.node_id(x, y),
                    dst: mesh.node_id(x + stride, y),
                    bytes,
                });
                x += 2 * stride;
            }
        }
        phases.push(phase);
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    mesh.simulate_phases(&phases)
}

/// Binomial-tree reduction inside every row (mirror of the broadcast).
pub fn reduce_time(mesh: &Mesh2D, bytes: u64) -> u64 {
    // Same communication structure, reversed direction — identical cost in
    // this model.
    broadcast_rows_time(mesh, bytes)
}

/// A translation: every node sends to the node `(dx, dy)` away (toroidal).
pub fn shift_time(mesh: &Mesh2D, dx: usize, dy: usize, bytes: u64) -> u64 {
    let mut msgs = Vec::with_capacity(mesh.nodes());
    for x in 0..mesh.px {
        for y in 0..mesh.py {
            let tx = (x + dx) % mesh.px;
            let ty = (y + dy) % mesh.py;
            msgs.push(PMsg {
                src: mesh.node_id(x, y),
                dst: mesh.node_id(tx, ty),
                bytes,
            });
        }
    }
    mesh.simulate_phase(&msgs)
}

/// Binomial-tree broadcast inside every *column* (axis 1): the row-`0`
/// member of each column is the source.
pub fn broadcast_cols_time(mesh: &Mesh2D, bytes: u64) -> u64 {
    // Transpose trick: run the row broadcast on the transposed mesh; the
    // cost model is symmetric in the two axes.
    let t = Mesh2D::new(mesh.py, mesh.px, mesh.cost);
    broadcast_rows_time(&t, bytes)
}

/// Scatter from the row head: node `(0, y)` sends a *distinct* block to
/// every other node of its row (sequential sends — the root's outgoing
/// link serializes them whatever the schedule).
pub fn scatter_rows_time(mesh: &Mesh2D, bytes_each: u64) -> u64 {
    let mut msgs = Vec::new();
    for y in 0..mesh.py {
        for x in 1..mesh.px {
            msgs.push(PMsg {
                src: mesh.node_id(0, y),
                dst: mesh.node_id(x, y),
                bytes: bytes_each,
            });
        }
    }
    mesh.simulate_phase(&msgs)
}

/// Gather to the row head: the mirror of [`scatter_rows_time`] (identical
/// cost in this symmetric-link model).
pub fn gather_rows_time(mesh: &Mesh2D, bytes_each: u64) -> u64 {
    let mut msgs = Vec::new();
    for y in 0..mesh.py {
        for x in 1..mesh.px {
            msgs.push(PMsg {
                src: mesh.node_id(x, y),
                dst: mesh.node_id(0, y),
                bytes: bytes_each,
            });
        }
    }
    mesh.simulate_phase(&msgs)
}

/// Naive broadcast for comparison: the root sends to every other node,
/// one message per destination (all in one contended phase).
pub fn naive_broadcast_time(mesh: &Mesh2D, bytes: u64) -> u64 {
    let root = mesh.node_id(0, 0);
    let msgs: Vec<PMsg> = (0..mesh.nodes())
        .filter(|&n| n != root)
        .map(|n| PMsg {
            src: root,
            dst: n,
            bytes,
        })
        .collect();
    mesh.simulate_phase(&msgs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;

    fn mesh(px: usize, py: usize) -> Mesh2D {
        Mesh2D::new(px, py, CostModel::paragon())
    }

    #[test]
    fn row_broadcast_scales_logarithmically_in_phases() {
        let m8 = mesh(8, 2);
        let m2 = mesh(2, 2);
        let t8 = broadcast_rows_time(&m8, 64);
        let t2 = broadcast_rows_time(&m2, 64);
        // 3 rounds vs 1 round: at most ~5× even with longer hops.
        assert!(t8 < 5 * t2, "t8={t8} t2={t2}");
        assert!(t8 > t2);
    }

    #[test]
    fn tree_broadcast_beats_naive_for_wide_rows() {
        let m = mesh(16, 1);
        let tree = broadcast_rows_time(&m, 64);
        let naive = naive_broadcast_time(&m, 64);
        assert!(tree < naive, "tree={tree} naive={naive}");
    }

    #[test]
    fn shift_is_single_phase_cheap() {
        let m = mesh(8, 8);
        let t = shift_time(&m, 1, 0, 64);
        // All messages are 1 hop and (except the wraparound) disjoint: a
        // couple of p2p times at most.
        let one = m.cost.p2p(1, 64);
        assert!(t <= 8 * one, "t={t} one={one}");
        assert!(t >= one);
    }

    #[test]
    fn reduce_equals_broadcast_cost_in_model() {
        let m = mesh(8, 4);
        assert_eq!(reduce_time(&m, 64), broadcast_rows_time(&m, 64));
    }

    #[test]
    fn column_broadcast_mirrors_row_broadcast() {
        let m = mesh(8, 4);
        let mt = mesh(4, 8);
        assert_eq!(broadcast_cols_time(&m, 64), broadcast_rows_time(&mt, 64));
    }

    #[test]
    fn scatter_and_gather_cost_match() {
        let m = mesh(8, 4);
        assert_eq!(scatter_rows_time(&m, 64), gather_rows_time(&m, 64));
        assert!(scatter_rows_time(&m, 64) > 0);
    }

    #[test]
    fn scatter_dearer_than_broadcast() {
        // A scatter moves distinct data through the root's single link; a
        // tree broadcast reuses the value: broadcast must win for equal
        // payload.
        let m = mesh(16, 1);
        assert!(broadcast_rows_time(&m, 64) < scatter_rows_time(&m, 64));
    }

    #[test]
    fn single_column_mesh_broadcast_is_free() {
        // px = 1: nothing to broadcast along rows.
        let m = mesh(1, 4);
        assert_eq!(broadcast_rows_time(&m, 64), 0);
    }
}
