//! A reusable, zero-allocation phase scheduler for the wormhole mesh.
//!
//! [`crate::Mesh2D::simulate_phase`] is correct but allocates on every
//! call: a fresh link table, a sorted copy of the message set, and one
//! route `Vec` per message. That is irrelevant for a handful of phases and
//! ruinous for production-size sweeps (10⁴–10⁵ messages × thousands of
//! configurations). [`PhaseSim`] keeps all scratch state alive across
//! calls:
//!
//! * the link-reservation table persists and is *logically* cleared per
//!   phase with an epoch stamp (no `memset` of the table, no rebuild);
//! * routes are walked with the allocation-free
//!   [`crate::mesh::RouteLinks`] iterator — twice per message, once to
//!   find the start time and once to commit the reservation;
//! * the sorted working copy of the phase lives in a reusable buffer.
//!
//! The schedule is **bit-for-bit identical** to
//! [`crate::Mesh2D::simulate_phase`] (same filter, same sort order, same
//! greedy whole-route reservation); the property tests in
//! `tests/proptests.rs` pin that equivalence, and the original method is
//! kept untouched as the oracle.
//!
//! For *repeated* simulation of one message set (payload sweeps, cost
//! sweeps), [`CachedPhase`] precomputes the sorted order and the flattened
//! route table once, so each replay is a linear scan with no routing
//! arithmetic at all.

use crate::mesh::Mesh2D;
use crate::model::PMsg;

/// Reusable scratch state for simulating mesh communication phases.
#[derive(Debug, Clone)]
pub struct PhaseSim {
    mesh: Mesh2D,
    /// Per-link time at which the link becomes free — valid only where
    /// `stamp` equals the current epoch.
    free: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
    scratch: Vec<PMsg>,
}

impl PhaseSim {
    /// Build a scratch engine for `mesh` (sizes the link table once).
    pub fn new(mesh: Mesh2D) -> Self {
        let links = mesh.link_count();
        PhaseSim {
            mesh,
            free: vec![0; links],
            stamp: vec![0; links],
            epoch: 0,
            scratch: Vec::new(),
        }
    }

    /// The simulated machine.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }

    /// Start a fresh phase: bump the epoch so every link reads as free.
    fn begin_phase(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: physically clear the stamps once per 2³² phases.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn link_free_at(&self, link: usize) -> u64 {
        if self.stamp[link] == self.epoch {
            self.free[link]
        } else {
            0
        }
    }

    #[inline]
    fn reserve_link(&mut self, link: usize, until: u64) {
        self.stamp[link] = self.epoch;
        self.free[link] = until;
    }

    /// Simulate one phase; returns the same makespan as
    /// [`Mesh2D::simulate_phase`] without any per-call allocation (after
    /// the scratch buffer has warmed up).
    pub fn simulate_phase(&mut self, msgs: &[PMsg]) -> u64 {
        self.scratch.clear();
        self.scratch
            .extend(msgs.iter().copied().filter(|m| m.src != m.dst));
        // `PMsg` has a total order, so unstable sorting is observationally
        // identical to the oracle's stable sort.
        self.scratch.sort_unstable();
        self.begin_phase();
        let mut makespan = 0u64;
        for idx in 0..self.scratch.len() {
            let m = self.scratch[idx];
            let mut hops = 0usize;
            let mut start = 0u64;
            for l in self.mesh.route_links(m.src, m.dst) {
                hops += 1;
                start = start.max(self.link_free_at(l.index()));
            }
            let end = start + self.mesh.cost.p2p(hops, m.bytes);
            for l in self.mesh.route_links(m.src, m.dst) {
                self.reserve_link(l.index(), end);
            }
            makespan = makespan.max(end);
        }
        makespan
    }

    /// Simulate dependent phases back to back (each starts after the
    /// previous completes); returns the total time.
    pub fn simulate_phases(&mut self, phases: &[Vec<PMsg>]) -> u64 {
        phases.iter().map(|p| self.simulate_phase(p)).sum()
    }

    /// Replay a precompiled phase (see [`CachedPhase`]).
    pub fn run_cached(&mut self, phase: &CachedPhase) -> u64 {
        self.run_cached_scaled(phase, 1)
    }

    /// Replay a precompiled phase with every payload multiplied by
    /// `byte_scale` — the payload-sweep fast path. Scaling all payloads by
    /// one factor preserves the oracle's sort order, so the result equals
    /// `simulate_phase` on the scaled message set.
    pub fn run_cached_scaled(&mut self, phase: &CachedPhase, byte_scale: u64) -> u64 {
        self.begin_phase();
        let mut makespan = 0u64;
        for i in 0..phase.bytes.len() {
            let (lo, hi) = (phase.offsets[i] as usize, phase.offsets[i + 1] as usize);
            let mut start = 0u64;
            for j in lo..hi {
                start = start.max(self.link_free_at(phase.links[j] as usize));
            }
            let dur = self.mesh.cost.p2p(hi - lo, phase.bytes[i] * byte_scale);
            let end = start + dur;
            for j in lo..hi {
                self.reserve_link(phase.links[j] as usize, end);
            }
            makespan = makespan.max(end);
        }
        makespan
    }
}

/// A phase compiled for repeated replay: messages filtered and sorted
/// exactly as the greedy scheduler wants them, with all routes flattened
/// into one dense link table.
#[derive(Debug, Clone)]
pub struct CachedPhase {
    /// Concatenated route link indices of every message, in schedule order.
    links: Vec<u32>,
    /// Prefix offsets into `links` (`len + 1` entries).
    offsets: Vec<u32>,
    /// Payload of each scheduled message.
    bytes: Vec<u64>,
}

impl CachedPhase {
    /// Compile `msgs` for `mesh`: filter self-messages, sort, and record
    /// every route once.
    pub fn new(mesh: &Mesh2D, msgs: &[PMsg]) -> Self {
        let mut sorted: Vec<PMsg> = msgs.iter().copied().filter(|m| m.src != m.dst).collect();
        sorted.sort_unstable();
        let mut links = Vec::new();
        let mut offsets = Vec::with_capacity(sorted.len() + 1);
        let mut bytes = Vec::with_capacity(sorted.len());
        offsets.push(0);
        for m in &sorted {
            links.extend(mesh.route_links(m.src, m.dst).map(|l| l.index() as u32));
            offsets.push(links.len() as u32);
            bytes.push(m.bytes);
        }
        CachedPhase {
            links,
            offsets,
            bytes,
        }
    }

    /// Number of scheduled (non-local) messages.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when no message crosses a link.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Fan a batch of *independent* phases out over worker threads, one
/// [`PhaseSim`] per thread; returns each phase's makespan in input order.
pub fn simulate_phases_batch(mesh: &Mesh2D, phases: &[Vec<PMsg>], threads: usize) -> Vec<u64> {
    crate::sweep::par_sweep_with(
        phases,
        threads,
        || PhaseSim::new(mesh.clone()),
        |sim, phase| sim.simulate_phase(phase),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;

    fn mesh(px: usize, py: usize) -> Mesh2D {
        Mesh2D::new(px, py, CostModel::paragon())
    }

    fn mixed_phase(mesh: &Mesh2D, n: usize, seed: u64) -> Vec<PMsg> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
                PMsg {
                    src: (h % mesh.nodes() as u64) as usize,
                    dst: ((h >> 17) % mesh.nodes() as u64) as usize,
                    bytes: 1 + (h >> 40) % 1000,
                }
            })
            .collect()
    }

    #[test]
    fn matches_oracle_across_reuses() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        for seed in 0..20 {
            let msgs = mixed_phase(&m, 3 * seed as usize, seed);
            assert_eq!(
                sim.simulate_phase(&msgs),
                m.simulate_phase(&msgs),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_oracle_on_degenerate_phases() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        assert_eq!(sim.simulate_phase(&[]), 0);
        let local = [PMsg {
            src: 3,
            dst: 3,
            bytes: 999,
        }];
        assert_eq!(sim.simulate_phase(&local), 0);
        // A phase after an empty phase still schedules correctly.
        let msgs = mixed_phase(&m, 12, 7);
        assert_eq!(sim.simulate_phase(&msgs), m.simulate_phase(&msgs));
    }

    #[test]
    fn phases_sum_like_mesh() {
        let m = mesh(4, 2);
        let phases: Vec<Vec<PMsg>> = (0..5).map(|s| mixed_phase(&m, 6, s)).collect();
        let mut sim = PhaseSim::new(m.clone());
        assert_eq!(sim.simulate_phases(&phases), m.simulate_phases(&phases));
    }

    #[test]
    fn cached_phase_replays_identically() {
        let m = mesh(8, 4);
        let msgs = mixed_phase(&m, 40, 3);
        let cached = CachedPhase::new(&m, &msgs);
        let mut sim = PhaseSim::new(m.clone());
        assert_eq!(sim.run_cached(&cached), m.simulate_phase(&msgs));
        // Scaled replay equals simulating the scaled message set.
        let scaled: Vec<PMsg> = msgs
            .iter()
            .map(|x| PMsg {
                bytes: x.bytes * 16,
                ..*x
            })
            .collect();
        assert_eq!(
            sim.run_cached_scaled(&cached, 16),
            m.simulate_phase(&scaled)
        );
        assert_eq!(
            cached.len(),
            scaled.iter().filter(|x| x.src != x.dst).count()
        );
    }

    #[test]
    fn batch_matches_serial() {
        let m = mesh(8, 4);
        let phases: Vec<Vec<PMsg>> = (0..9)
            .map(|s| mixed_phase(&m, 10 + s as usize, s))
            .collect();
        let serial: Vec<u64> = phases.iter().map(|p| m.simulate_phase(p)).collect();
        assert_eq!(simulate_phases_batch(&m, &phases, 4), serial);
        assert_eq!(simulate_phases_batch(&m, &phases, 1), serial);
    }

    #[test]
    fn epoch_reset_isolates_phases() {
        // A heavy phase must not leak reservations into the next one.
        let m = mesh(4, 1);
        let mut sim = PhaseSim::new(m.clone());
        let heavy = [PMsg {
            src: 0,
            dst: 3,
            bytes: 1 << 20,
        }];
        let light = [PMsg {
            src: 0,
            dst: 1,
            bytes: 1,
        }];
        sim.simulate_phase(&heavy);
        assert_eq!(sim.simulate_phase(&light), m.simulate_phase(&light));
    }
}
