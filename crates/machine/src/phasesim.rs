//! A reusable, zero-allocation phase scheduler for the wormhole mesh.
//!
//! [`crate::Mesh2D::simulate_phase`] is correct but allocates on every
//! call: a fresh link table, a sorted copy of the message set, and one
//! route `Vec` per message. That is irrelevant for a handful of phases and
//! ruinous for production-size sweeps (10⁴–10⁵ messages × thousands of
//! configurations). [`PhaseSim`] keeps all scratch state alive across
//! calls:
//!
//! * the link-reservation table persists and is *logically* cleared per
//!   phase with an epoch stamp (no `memset` of the table, no rebuild);
//! * routes are walked with the allocation-free
//!   [`crate::mesh::RouteLinks`] iterator — twice per message, once to
//!   find the start time and once to commit the reservation;
//! * the sorted working copy of the phase lives in a reusable buffer.
//!
//! The schedule is **bit-for-bit identical** to
//! [`crate::Mesh2D::simulate_phase`] (same filter, same sort order, same
//! greedy whole-route reservation); the property tests in
//! `tests/proptests.rs` pin that equivalence, and the original method is
//! kept untouched as the oracle.
//!
//! For *repeated* simulation of one message set (payload sweeps, cost
//! sweeps), [`CachedPhase`] precomputes the sorted order and the flattened
//! route table once, so each replay is a linear scan with no routing
//! arithmetic at all.

use crate::fault::{fold_target, CompiledFaultPlan, FaultPlan, FaultReport};
use crate::mesh::{Mesh2D, RouteLinks};
use crate::model::PMsg;
use crate::overlap::{inflation_exceeded, OverlapOrder, ScheduleMode, SchedulePolicy};
use crate::rng::XorShift64;
use std::cmp::Reverse;
use std::collections::{BTreeMap, VecDeque};

/// Reusable scratch state for simulating mesh communication phases.
#[derive(Debug, Clone)]
pub struct PhaseSim {
    pub(crate) mesh: Mesh2D,
    /// Per-link time at which the link becomes free — valid only where
    /// `stamp` equals the current epoch.
    free: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
    pub(crate) scratch: Vec<PMsg>,
    /// Per-node readiness/arrival scratch for the overlapped scheduler
    /// (see [`crate::overlap`]); untouched by the phased paths.
    pub(crate) node_ready: Vec<u64>,
    pub(crate) node_arrival: Vec<u64>,
    /// Index permutation scratch for the overlapped priority orders.
    pub(crate) order: Vec<u32>,
}

impl PhaseSim {
    /// Build a scratch engine for `mesh` (sizes the link table once).
    pub fn new(mesh: Mesh2D) -> Self {
        let links = mesh.link_count();
        let nodes = mesh.nodes();
        PhaseSim {
            mesh,
            free: vec![0; links],
            stamp: vec![0; links],
            epoch: 0,
            scratch: Vec::new(),
            node_ready: vec![0; nodes],
            node_arrival: vec![0; nodes],
            order: Vec::new(),
        }
    }

    /// The simulated machine.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }

    /// Start a fresh phase: bump the epoch so every link reads as free.
    pub(crate) fn begin_phase(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: physically clear the stamps once per 2³² phases.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    pub(crate) fn link_free_at(&self, link: usize) -> u64 {
        if self.stamp[link] == self.epoch {
            self.free[link]
        } else {
            0
        }
    }

    #[inline]
    pub(crate) fn reserve_link(&mut self, link: usize, until: u64) {
        self.stamp[link] = self.epoch;
        self.free[link] = until;
    }

    /// Simulate one phase; returns the same makespan as
    /// [`Mesh2D::simulate_phase`] without any per-call allocation (after
    /// the scratch buffer has warmed up).
    pub fn simulate_phase(&mut self, msgs: &[PMsg]) -> u64 {
        self.scratch.clear();
        self.scratch
            .extend(msgs.iter().copied().filter(|m| m.src != m.dst));
        // `PMsg` has a total order, so unstable sorting is observationally
        // identical to the oracle's stable sort.
        self.scratch.sort_unstable();
        self.begin_phase();
        let mut makespan = 0u64;
        for idx in 0..self.scratch.len() {
            let m = self.scratch[idx];
            let mut hops = 0usize;
            let mut start = 0u64;
            for l in self.mesh.route_links(m.src, m.dst) {
                hops += 1;
                start = start.max(self.link_free_at(l.index()));
            }
            let end = start + self.mesh.cost.p2p(hops, m.bytes);
            for l in self.mesh.route_links(m.src, m.dst) {
                self.reserve_link(l.index(), end);
            }
            makespan = makespan.max(end);
        }
        makespan
    }

    /// Simulate dependent phases back to back (each starts after the
    /// previous completes); returns the total time.
    pub fn simulate_phases(&mut self, phases: &[Vec<PMsg>]) -> u64 {
        phases.iter().map(|p| self.simulate_phase(p)).sum()
    }

    /// Scan a candidate route: earliest start ≥ `not_before` given current
    /// link reservations, the hop count, and — if any link of the route is
    /// inside an outage window at that start — the earliest time one of the
    /// dead links comes back (the time worth deferring to).
    pub(crate) fn scan_route(
        &self,
        route: RouteLinks,
        not_before: u64,
        plan: &FaultPlan,
    ) -> (u64, usize, Option<u64>) {
        let mut start = not_before;
        let mut hops = 0usize;
        for l in route.clone() {
            hops += 1;
            start = start.max(self.link_free_at(l.index()));
        }
        let mut dead_until: Option<u64> = None;
        for l in route {
            if let Some(u) = plan.link_outage_until(l.index(), start) {
                dead_until = Some(dead_until.map_or(u, |d: u64| d.min(u)));
            }
        }
        (start, hops, dead_until)
    }

    /// Transmit once over `route`, reserving every link `[start, end)`.
    pub(crate) fn transmit(
        &mut self,
        route: RouteLinks,
        start: u64,
        hops: usize,
        bytes: u64,
    ) -> u64 {
        let end = start.saturating_add(self.mesh.cost.p2p(hops, bytes));
        for l in route {
            self.reserve_link(l.index(), end);
        }
        end
    }

    /// Simulate one phase under a [`FaultPlan`]: same deterministic greedy
    /// whole-route schedule as [`PhaseSim::simulate_phase`], but each
    /// message runs the resilient transport:
    ///
    /// * **node outages** defer the send until both endpoints are alive;
    /// * **link outages** trigger adaptive rerouting — a message whose XY
    ///   route crosses a dead link falls back to the YX route, and defers
    ///   to the end of the outage window only if both routes are dead;
    /// * each transmission attempt is **lost** with `drop_prob` (the lost
    ///   attempt still occupies its links — wasted bandwidth is modelled);
    /// * losses are retransmitted after timeout × exponential backoff up
    ///   to `max_attempts`, at which point the transport escalates to a
    ///   reliable channel, so with retries enabled **every message is
    ///   delivered exactly once** whatever the drop probability;
    /// * a delivered message is **duplicated** with `dup_prob` (a lost
    ///   acknowledgement); the receiver deduplicates, so the duplicate
    ///   wastes bandwidth without double-delivering;
    /// * a message whose endpoint is **permanently dead** at send time
    ///   ([`crate::NodeDeath`]) is black-holed: counted under `lost` and
    ///   `black_holes`. Surviving a permanent death needs the rollback
    ///   path, [`PhaseSim::simulate_phases_recovering`].
    ///
    /// A [`FaultPlan::is_zero_fault`] plan takes none of these branches
    /// and produces a makespan **bit-identical** to
    /// [`PhaseSim::simulate_phase`] (pinned by property tests).
    pub fn simulate_phase_faulty(&mut self, msgs: &[PMsg], plan: &FaultPlan) -> FaultReport {
        self.simulate_phase_faulty_seeded(msgs, plan, plan.seed)
    }

    fn simulate_phase_faulty_seeded(
        &mut self,
        msgs: &[PMsg],
        plan: &FaultPlan,
        seed: u64,
    ) -> FaultReport {
        self.scratch.clear();
        self.scratch
            .extend(msgs.iter().copied().filter(|m| m.src != m.dst));
        self.scratch.sort_unstable();
        self.begin_phase();
        let mut rng = XorShift64::new(seed);
        let mut rep = FaultReport {
            messages: self.scratch.len(),
            ..FaultReport::default()
        };
        let max_attempts = if plan.retry.enabled {
            plan.retry.max_attempts.max(1)
        } else {
            1
        };
        for idx in 0..self.scratch.len() {
            let m = self.scratch[idx];
            let mut next_send = 0u64;
            let mut attempt = 0u32;
            loop {
                // Defer while an endpoint is inside an outage window.
                let alive = plan
                    .node_alive_after(m.src, next_send)
                    .max(plan.node_alive_after(m.dst, next_send));
                if alive == u64::MAX {
                    // A permanently dead endpoint never comes back: the
                    // message is black-holed (counted lost), not deferred
                    // forever. Recovering from this requires the
                    // checkpoint/rollback path.
                    rep.lost += 1;
                    rep.black_holes += 1;
                    break;
                }
                if alive > next_send {
                    rep.deferrals += 1;
                    next_send = alive;
                    continue;
                }
                // Route selection: XY unless dead, then YX, else wait out
                // the outage. Each deferral jumps to a strictly later
                // outage boundary, so this loop is bounded.
                let (start, hops, xy_dead) =
                    self.scan_route(self.mesh.route_links(m.src, m.dst), next_send, plan);
                let (use_yx, start, hops) = if xy_dead.is_none() {
                    (false, start, hops)
                } else {
                    let (start_yx, hops_yx, yx_dead) =
                        self.scan_route(self.mesh.route_links_yx(m.src, m.dst), next_send, plan);
                    if let Some(yx_until) = yx_dead {
                        rep.deferrals += 1;
                        next_send = xy_dead
                            .unwrap_or(u64::MAX)
                            .min(yx_until)
                            .max(next_send.saturating_add(1));
                        continue;
                    }
                    rep.reroutes += 1;
                    (true, start_yx, hops_yx)
                };
                let route = |mesh: &Mesh2D| {
                    if use_yx {
                        mesh.route_links_yx(m.src, m.dst)
                    } else {
                        mesh.route_links(m.src, m.dst)
                    }
                };
                // Transmit (a lost attempt still occupies its links).
                attempt += 1;
                rep.attempts += 1;
                let end = self.transmit(route(&self.mesh), start, hops, m.bytes);
                rep.makespan = rep.makespan.max(end);
                let escalated = plan.retry.enabled && attempt >= max_attempts;
                let unlucky = rng.chance(plan.drop_prob);
                if unlucky && !escalated {
                    if !plan.retry.enabled {
                        rep.lost += 1;
                        break;
                    }
                    rep.retries += 1;
                    next_send = end.saturating_add(plan.retry.backoff_delay(attempt));
                    continue;
                }
                if unlucky && escalated {
                    rep.escalations += 1;
                }
                rep.delivered += 1;
                // Lost-acknowledgement duplicate, suppressed at the
                // receiver: pure wasted bandwidth.
                if rng.chance(plan.dup_prob) {
                    rep.duplicates += 1;
                    rep.attempts += 1;
                    // The delivery just reserved every link of this route
                    // to `end`, so a rescan would return start = `end` and
                    // the same hop count: retransmit directly.
                    let end2 = self.transmit(route(&self.mesh), end, hops, m.bytes);
                    rep.makespan = rep.makespan.max(end2);
                }
                break;
            }
        }
        rep
    }

    /// Simulate dependent phases back to back under a fault plan. Each
    /// phase restarts the clock at 0 (outage windows are per-phase) and
    /// draws from its own PRNG stream (`seed + phase index`), so inserting
    /// or removing a phase does not shift the fault sequence of the
    /// others. Reports are summed via [`FaultReport::absorb`].
    pub fn simulate_phases_faulty(
        &mut self,
        phases: &[Vec<PMsg>],
        plan: &FaultPlan,
    ) -> FaultReport {
        let mut total = FaultReport::default();
        for (i, p) in phases.iter().enumerate() {
            let rep = self.simulate_phase_faulty_seeded(p, plan, plan.seed.wrapping_add(i as u64));
            total.absorb(&rep);
        }
        total
    }

    /// Take a phase-boundary snapshot of the engine and the committed
    /// run so far.
    pub(crate) fn checkpoint(&self, phase: usize, elapsed: u64, report: FaultReport) -> Checkpoint {
        Checkpoint {
            phase,
            elapsed,
            report,
            free: self.free.clone(),
            stamp: self.stamp.clone(),
            epoch: self.epoch,
        }
    }

    /// Restore the engine's link-clock state from a snapshot.
    pub(crate) fn restore(&mut self, c: &Checkpoint) {
        self.free.copy_from_slice(&c.free);
        self.stamp.copy_from_slice(&c.stamp);
        self.epoch = c.epoch;
    }

    /// [`PhaseSim::checkpoint`] plus the overlapped per-node timeline
    /// and the adaptive policy's degradation flag.
    pub(crate) fn checkpoint_overlapped(
        &self,
        phase: usize,
        elapsed: u64,
        report: FaultReport,
        barrier: bool,
    ) -> OverlapCheckpoint {
        OverlapCheckpoint {
            base: self.checkpoint(phase, elapsed, report),
            node_ready: self.node_ready.clone(),
            node_arrival: self.node_arrival.clone(),
            barrier,
        }
    }

    /// Restore link clocks *and* the per-node readiness/arrival
    /// timeline (the caller restores the `barrier` flag itself).
    pub(crate) fn restore_overlapped(&mut self, c: &OverlapCheckpoint) {
        self.restore(&c.base);
        self.node_ready.copy_from_slice(&c.node_ready);
        self.node_arrival.copy_from_slice(&c.node_arrival);
    }

    /// Simulate dependent phases under a [`FaultPlan`] that may contain
    /// **permanent node deaths**, surviving them end-to-end via
    /// checkpoint/rollback:
    ///
    /// * at every `policy.interval`-th phase boundary the engine takes a
    ///   [`Checkpoint`] (committed clock, committed report, link-clock
    ///   scratch), keeping a bounded ring of the `policy.ring` most
    ///   recent ones;
    /// * a death at `t` becomes visible to the failure detector at
    ///   `t + detection_latency` ([`FaultPlan::detection_time`]). When
    ///   detection falls inside the simulated span, the run **rolls
    ///   back** to the newest checkpoint taken at-or-before the death
    ///   (hence the ring — the detection point may be several intervals
    ///   past the death), folds the dead node's traffic onto its nearest
    ///   survivor ([`fold_target`]) and resumes from there;
    /// * the final report describes the **committed** run only — the
    ///   exactly-once delivery guarantee and the zero-death bit-identity
    ///   with [`PhaseSim::simulate_phases`] hold — while undone work,
    ///   rollback counts, replayed phases and checkpoint overhead are
    ///   accounted separately in [`crate::RecoveryReport`]
    ///   (`report.recovery`; see [`FaultReport::wall_clock_ns`]).
    ///
    /// Recovery is phase-granular: a phase in flight when a death is
    /// detected is discarded wholesale and its makespan counted as lost
    /// work. Replayed phases reuse the per-phase seed (`seed + i`), so
    /// the whole run — rollbacks included — is deterministic.
    pub fn simulate_phases_recovering(
        &mut self,
        phases: &[Vec<PMsg>],
        plan: &FaultPlan,
        policy: &CheckpointPolicy,
    ) -> FaultReport {
        let interval = policy.interval.max(1);
        let ring_cap = policy.ring.max(1);
        let (px, py) = (self.mesh.px, self.mesh.py);
        // Deaths are handled at this level: the per-phase transport must
        // not black-hole traffic to a not-yet-detected dead node (that
        // work is lost on rollback instead).
        let inner = FaultPlan {
            node_deaths: Vec::new(),
            ..plan.clone()
        };
        let mut total = FaultReport::default();
        let mut handled = vec![false; plan.node_deaths.len()];
        let mut dead: Vec<usize> = Vec::new();
        let mut ring: VecDeque<Checkpoint> = VecDeque::new();
        let mut now = 0u64;
        // Highest phase index committed so far (exclusive): commits below
        // it are re-executions after a rollback.
        let mut frontier = 0usize;
        let mut i = 0usize;
        loop {
            let mut phase_end = now;
            let mut phase_rep: Option<(FaultReport, usize)> = None;
            if i < phases.len() {
                // Checkpoint at the boundary (unless the rollback we just
                // took restored exactly this point — its snapshot is
                // already the ring's newest entry).
                if i % interval == 0 && ring.back().is_none_or(|c| c.phase != i || c.elapsed != now)
                {
                    if ring.len() == ring_cap {
                        ring.pop_front();
                    }
                    ring.push_back(self.checkpoint(i, now, total));
                    total.recovery.checkpoints += 1;
                    total.recovery.checkpoint_overhead_ns += policy.cost_ns;
                }
                // Fold traffic of already-detected dead nodes onto their
                // nearest survivors; a message with no possible target
                // (all nodes dead) is black-holed.
                let mut folded = Vec::new();
                let mut dropped = 0usize;
                let msgs: &[PMsg] = if dead.is_empty() {
                    &phases[i]
                } else {
                    for m in &phases[i] {
                        let src = if dead.contains(&m.src) {
                            fold_target(px, py, m.src, &dead)
                        } else {
                            Some(m.src)
                        };
                        let dst = if dead.contains(&m.dst) {
                            fold_target(px, py, m.dst, &dead)
                        } else {
                            Some(m.dst)
                        };
                        match (src, dst) {
                            (Some(src), Some(dst)) => folded.push(PMsg { src, dst, ..*m }),
                            _ => dropped += 1,
                        }
                    }
                    &folded
                };
                let rep = self.simulate_phase_faulty_seeded(
                    msgs,
                    &inner,
                    plan.seed.wrapping_add(i as u64),
                );
                phase_end = now + rep.makespan;
                phase_rep = Some((rep, dropped));
            }
            // Earliest unhandled death the detector can see: inside the
            // span this phase would commit, or — once all phases are done
            // — anywhere inside the committed run (a death near the end
            // whose detection latency reaches past it still recovers).
            let visible = plan
                .node_deaths
                .iter()
                .enumerate()
                .filter(|(k, d)| {
                    !handled[*k]
                        && if phase_rep.is_some() {
                            plan.detection_time(d.t) <= phase_end
                        } else {
                            d.t < now
                        }
                })
                .min_by_key(|(_, d)| (d.t, d.node));
            if let Some((k, d)) = visible {
                handled[k] = true;
                total.recovery.detected += 1;
                if !dead.contains(&d.node) {
                    dead.push(d.node);
                    total.recovery.folded_nodes += 1;
                }
                // Roll back to the newest checkpoint at-or-before the
                // death; if the ring already evicted it, the oldest
                // surviving snapshot is the best we can do.
                let pos = ring.iter().rposition(|c| c.elapsed <= d.t).unwrap_or(0);
                ring.truncate(pos + 1);
                let c = ring.back().expect("phase 0 is always checkpointed");
                total.recovery.lost_work_ns += phase_end - c.elapsed;
                let recovery = total.recovery;
                total = c.report;
                total.recovery = recovery;
                total.recovery.rollbacks += 1;
                now = c.elapsed;
                i = c.phase;
                self.restore(c);
                continue;
            }
            let Some((rep, dropped)) = phase_rep else {
                break;
            };
            // Commit the phase.
            total.absorb(&rep);
            total.messages += dropped;
            total.lost += dropped;
            total.black_holes += dropped as u64;
            now = phase_end;
            if i < frontier {
                total.recovery.replayed_phases += 1;
            } else {
                frontier = i + 1;
            }
            i += 1;
        }
        // Only deaths that struck the run count: one scheduled past the
        // committed end never happened to this run. Struck ≡ handled —
        // any death inside the committed span is caught by the final
        // sweep, and a handled one caused a real rollback even if folding
        // then shortened the schedule past its timestamp.
        total.recovery.deaths = handled.iter().filter(|&&h| h).count();
        total
    }

    /// Replay a precompiled phase (see [`CachedPhase`]).
    pub fn run_cached(&mut self, phase: &CachedPhase) -> u64 {
        self.run_cached_scaled(phase, 1)
    }

    /// Replay a precompiled phase with every payload multiplied by
    /// `byte_scale` — the payload-sweep fast path. Scaling all payloads by
    /// one factor preserves the oracle's sort order, so the result equals
    /// `simulate_phase` on the scaled message set.
    pub fn run_cached_scaled(&mut self, phase: &CachedPhase, byte_scale: u64) -> u64 {
        self.begin_phase();
        let mut makespan = 0u64;
        for i in 0..phase.bytes.len() {
            let (lo, hi) = (phase.offsets[i] as usize, phase.offsets[i + 1] as usize);
            let mut start = 0u64;
            for j in lo..hi {
                start = start.max(self.link_free_at(phase.links[j] as usize));
            }
            let dur = self.mesh.cost.p2p(hi - lo, phase.bytes[i] * byte_scale);
            let end = start + dur;
            for j in lo..hi {
                self.reserve_link(phase.links[j] as usize, end);
            }
            makespan = makespan.max(end);
        }
        makespan
    }

    /// Replay a precompiled phase under a precompiled fault plan:
    /// bit-identical to [`PhaseSim::simulate_phase_faulty`] with
    /// `FaultPlan { seed, ..plan }`, at [`CachedPhase`] speed — no
    /// filtering, no sorting, no route arithmetic, and every outage
    /// lookup is a binary search in a per-link/per-node bucket.
    pub fn run_cached_faulty(
        &mut self,
        phase: &CachedFaultPhase,
        plan: &CompiledFaultPlan,
        seed: u64,
    ) -> FaultReport {
        self.run_cached_faulty_mode(phase, plan, seed, true)
    }

    /// `with_deaths = false` is the recovery driver's transport view
    /// (deaths survived by rollback, not black-holed) — the compiled
    /// twin of the oracle's `FaultPlan { node_deaths: vec![], .. }`.
    fn run_cached_faulty_mode(
        &mut self,
        phase: &CachedFaultPhase,
        plan: &CompiledFaultPlan,
        seed: u64,
        with_deaths: bool,
    ) -> FaultReport {
        self.begin_phase();
        let mut rng = XorShift64::new(seed);
        let p = plan.plan();
        let mut rep = FaultReport {
            messages: phase.len(),
            ..FaultReport::default()
        };
        let max_attempts = if p.retry.enabled {
            p.retry.max_attempts.max(1)
        } else {
            1
        };
        // Skipping a check block when the plan has no matching event is
        // observationally identical: the oracle's scan would find
        // nothing and no RNG draw happens on those paths.
        let check_nodes = plan.check_nodes(with_deaths);
        let check_links = plan.has_link_outages();
        for i in 0..phase.len() {
            let (src, dst) = (phase.src[i] as usize, phase.dst[i] as usize);
            let xy = &phase.xy_links[phase.xy_off[i] as usize..phase.xy_off[i + 1] as usize];
            let yx = &phase.yx_links[phase.yx_off[i] as usize..phase.yx_off[i + 1] as usize];
            let dur = phase.dur[i];
            let mut next_send = 0u64;
            let mut attempt = 0u32;
            loop {
                if check_nodes {
                    let alive = plan
                        .node_alive_after_mode(src, next_send, with_deaths)
                        .max(plan.node_alive_after_mode(dst, next_send, with_deaths));
                    if alive == u64::MAX {
                        rep.lost += 1;
                        rep.black_holes += 1;
                        break;
                    }
                    if alive > next_send {
                        rep.deferrals += 1;
                        next_send = alive;
                        continue;
                    }
                }
                let mut start = next_send;
                for &l in xy {
                    start = start.max(self.link_free_at(l as usize));
                }
                let xy_dead = if check_links {
                    scan_outages(xy, start, plan)
                } else {
                    None
                };
                let (links, start) = if xy_dead.is_none() {
                    (xy, start)
                } else {
                    let mut start_yx = next_send;
                    for &l in yx {
                        start_yx = start_yx.max(self.link_free_at(l as usize));
                    }
                    if let Some(yx_until) = scan_outages(yx, start_yx, plan) {
                        rep.deferrals += 1;
                        next_send = xy_dead
                            .unwrap_or(u64::MAX)
                            .min(yx_until)
                            .max(next_send.saturating_add(1));
                        continue;
                    }
                    rep.reroutes += 1;
                    (yx, start_yx)
                };
                attempt += 1;
                rep.attempts += 1;
                let end = start.saturating_add(dur);
                for &l in links {
                    self.reserve_link(l as usize, end);
                }
                rep.makespan = rep.makespan.max(end);
                let escalated = p.retry.enabled && attempt >= max_attempts;
                let unlucky = rng.chance(p.drop_prob);
                if unlucky && !escalated {
                    if !p.retry.enabled {
                        rep.lost += 1;
                        break;
                    }
                    rep.retries += 1;
                    next_send = end.saturating_add(p.retry.backoff_delay(attempt));
                    continue;
                }
                if unlucky && escalated {
                    rep.escalations += 1;
                }
                rep.delivered += 1;
                if rng.chance(p.dup_prob) {
                    rep.duplicates += 1;
                    rep.attempts += 1;
                    let end2 = end.saturating_add(dur);
                    for &l in links {
                        self.reserve_link(l as usize, end2);
                    }
                    rep.makespan = rep.makespan.max(end2);
                }
                break;
            }
        }
        rep
    }

    /// Compiled twin of the overlapped-faulty step (see
    /// [`crate::overlap`]): [`CachedFaultPhase`] replay through the
    /// per-node ready/arrival timeline. The caller owns the run-wide
    /// state — one `begin_phase()` per run, the readiness reset, and the
    /// clock/barrier bookkeeping — so, unlike
    /// [`PhaseSim::run_cached_faulty`], this must be driven phase by
    /// phase on one shared link timeline.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_cached_overlapped_faulty_step(
        &mut self,
        merge: bool,
        phase: &CachedFaultPhase,
        plan: &CompiledFaultPlan,
        seed: u64,
        order: OverlapOrder,
        with_deaths: bool,
        barrier: bool,
        clock: u64,
    ) -> FaultReport {
        if merge {
            if barrier {
                self.node_ready.fill(clock);
            } else {
                for n in 0..self.node_ready.len() {
                    if self.node_arrival[n] > self.node_ready[n] {
                        self.node_ready[n] = self.node_arrival[n];
                    }
                }
            }
        }
        self.order.clear();
        self.order.extend(0..phase.len() as u32);
        if order == OverlapOrder::LongestFirst {
            let mut perm = std::mem::take(&mut self.order);
            let ready = &self.node_ready;
            perm.sort_by_key(|&i| {
                let i = i as usize;
                let hops = phase.xy_off[i + 1] - phase.xy_off[i];
                (ready[phase.src[i] as usize], Reverse(hops), i as u32)
            });
            self.order = perm;
        }
        let mut rng = XorShift64::new(seed);
        let p = plan.plan();
        let mut rep = FaultReport {
            messages: phase.len(),
            ..FaultReport::default()
        };
        let max_attempts = if p.retry.enabled {
            p.retry.max_attempts.max(1)
        } else {
            1
        };
        let check_nodes = plan.check_nodes(with_deaths);
        let check_links = plan.has_link_outages();
        for oi in 0..self.order.len() {
            let i = self.order[oi] as usize;
            let (src, dst) = (phase.src[i] as usize, phase.dst[i] as usize);
            let xy = &phase.xy_links[phase.xy_off[i] as usize..phase.xy_off[i + 1] as usize];
            let yx = &phase.yx_links[phase.yx_off[i] as usize..phase.yx_off[i + 1] as usize];
            let dur = phase.dur[i];
            let mut next_send = self.node_ready[src];
            let mut attempt = 0u32;
            loop {
                if check_nodes {
                    let alive = plan
                        .node_alive_after_mode(src, next_send, with_deaths)
                        .max(plan.node_alive_after_mode(dst, next_send, with_deaths));
                    if alive == u64::MAX {
                        rep.lost += 1;
                        rep.black_holes += 1;
                        break;
                    }
                    if alive > next_send {
                        rep.deferrals += 1;
                        next_send = alive;
                        continue;
                    }
                }
                let mut start = next_send;
                for &l in xy {
                    start = start.max(self.link_free_at(l as usize));
                }
                let xy_dead = if check_links {
                    scan_outages(xy, start, plan)
                } else {
                    None
                };
                let (links, start) = if xy_dead.is_none() {
                    (xy, start)
                } else {
                    let mut start_yx = next_send;
                    for &l in yx {
                        start_yx = start_yx.max(self.link_free_at(l as usize));
                    }
                    if let Some(yx_until) = scan_outages(yx, start_yx, plan) {
                        rep.deferrals += 1;
                        next_send = xy_dead
                            .unwrap_or(u64::MAX)
                            .min(yx_until)
                            .max(next_send.saturating_add(1));
                        continue;
                    }
                    rep.reroutes += 1;
                    (yx, start_yx)
                };
                attempt += 1;
                rep.attempts += 1;
                let end = start.saturating_add(dur);
                for &l in links {
                    self.reserve_link(l as usize, end);
                }
                rep.makespan = rep.makespan.max(end);
                let escalated = p.retry.enabled && attempt >= max_attempts;
                let unlucky = rng.chance(p.drop_prob);
                if unlucky && !escalated {
                    if !p.retry.enabled {
                        rep.lost += 1;
                        break;
                    }
                    rep.retries += 1;
                    next_send = end.saturating_add(p.retry.backoff_delay(attempt));
                    continue;
                }
                if unlucky && escalated {
                    rep.escalations += 1;
                }
                rep.delivered += 1;
                if end > self.node_arrival[dst] {
                    self.node_arrival[dst] = end;
                }
                if rng.chance(p.dup_prob) {
                    rep.duplicates += 1;
                    rep.attempts += 1;
                    let end2 = end.saturating_add(dur);
                    for &l in links {
                        self.reserve_link(l as usize, end2);
                    }
                    rep.makespan = rep.makespan.max(end2);
                }
                break;
            }
        }
        rep
    }
}

/// Earliest comeback time among route links inside an outage window at
/// `start` — the compiled twin of the oracle's per-link
/// [`FaultPlan::link_outage_until`] scan inside `scan_route`.
#[inline]
pub(crate) fn scan_outages(links: &[u32], start: u64, plan: &CompiledFaultPlan) -> Option<u64> {
    let mut dead_until: Option<u64> = None;
    for &l in links {
        if let Some(u) = plan.link_outage_until(l as usize, start) {
            dead_until = Some(dead_until.map_or(u, |d: u64| d.min(u)));
        }
    }
    dead_until
}

/// When and how often [`PhaseSim::simulate_phases_recovering`] takes
/// checkpoints, and how many it keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint every `interval` phases (clamped to ≥ 1). Small
    /// intervals bound lost work; large ones bound overhead.
    pub interval: usize,
    /// Number of recent checkpoints retained (clamped to ≥ 1). The ring
    /// must reach back past the failure detector's latency, or a rollback
    /// falls back to the oldest surviving snapshot and loses more work.
    pub ring: usize,
    /// Simulated cost of writing one checkpoint, in ns. Accounted in
    /// [`crate::RecoveryReport::checkpoint_overhead_ns`], *not* in the
    /// makespan — zero-death runs stay bit-identical to the unfaulted
    /// scheduler.
    pub cost_ns: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            interval: 4,
            ring: 8,
            cost_ns: 25_000, // ≈ one message start-up per snapshot
        }
    }
}

/// A phase-boundary snapshot of the committed run: enough to roll the
/// engine and the accounting back and replay from here.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Next phase to execute when restored.
    pub(crate) phase: usize,
    /// Committed simulated time at the boundary, in ns.
    pub(crate) elapsed: u64,
    /// Committed fault accounting at the boundary.
    pub(crate) report: FaultReport,
    /// Link-clock scratch state (valid where `stamp` matches `epoch`).
    free: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
}

/// A [`Checkpoint`] extended with the overlapped scheduler's per-node
/// timeline (and the adaptive policy's degradation flag): rollback in
/// overlapped mode must restore readiness/arrival state too, or the
/// replay would release messages against a future that was undone.
#[derive(Debug, Clone)]
pub(crate) struct OverlapCheckpoint {
    pub(crate) base: Checkpoint,
    node_ready: Vec<u64>,
    node_arrival: Vec<u64>,
    pub(crate) barrier: bool,
}

impl Checkpoint {
    /// The phase this snapshot resumes at.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Committed simulated time at the snapshot, in ns.
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }
}

/// A phase compiled for repeated replay: messages filtered and sorted
/// exactly as the greedy scheduler wants them, with all routes flattened
/// into one dense link table.
#[derive(Debug, Clone)]
pub struct CachedPhase {
    /// Concatenated route link indices of every message, in schedule order.
    pub(crate) links: Vec<u32>,
    /// Prefix offsets into `links` (`len + 1` entries).
    pub(crate) offsets: Vec<u32>,
    /// Payload of each scheduled message.
    pub(crate) bytes: Vec<u64>,
    /// Endpoints of each scheduled message — used by the overlapped
    /// replay path to track per-node readiness (see [`crate::overlap`]).
    pub(crate) src: Vec<u32>,
    pub(crate) dst: Vec<u32>,
}

impl CachedPhase {
    /// Compile `msgs` for `mesh`: filter self-messages, sort, and record
    /// every route once.
    pub fn new(mesh: &Mesh2D, msgs: &[PMsg]) -> Self {
        let mut sorted: Vec<PMsg> = msgs.iter().copied().filter(|m| m.src != m.dst).collect();
        sorted.sort_unstable();
        let mut links = Vec::new();
        let mut offsets = Vec::with_capacity(sorted.len() + 1);
        let mut bytes = Vec::with_capacity(sorted.len());
        let mut src = Vec::with_capacity(sorted.len());
        let mut dst = Vec::with_capacity(sorted.len());
        offsets.push(0);
        for m in &sorted {
            links.extend(mesh.route_links(m.src, m.dst).map(|l| l.index() as u32));
            offsets.push(links.len() as u32);
            bytes.push(m.bytes);
            src.push(m.src as u32);
            dst.push(m.dst as u32);
        }
        CachedPhase {
            links,
            offsets,
            bytes,
            src,
            dst,
        }
    }

    /// Number of scheduled (non-local) messages.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when no message crosses a link.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// A phase compiled for repeated *faulty* replay: like [`CachedPhase`],
/// but with **both** routes of every message flattened (XY, and the YX
/// fallback taken around a dead link), the endpoints kept for liveness
/// checks, and the transmission duration precomputed (XY and YX have
/// the same hop count, hence the same cost).
#[derive(Debug, Clone)]
pub struct CachedFaultPhase {
    pub(crate) src: Vec<u32>,
    pub(crate) dst: Vec<u32>,
    /// Concatenated XY route links, in schedule order.
    pub(crate) xy_links: Vec<u32>,
    pub(crate) xy_off: Vec<u32>,
    /// Concatenated YX route links.
    pub(crate) yx_links: Vec<u32>,
    pub(crate) yx_off: Vec<u32>,
    /// `cost.p2p(hops, bytes)` of each scheduled message.
    pub(crate) dur: Vec<u64>,
}

impl CachedFaultPhase {
    /// Compile `msgs` for `mesh`: filter self-messages, sort, and record
    /// both routes and the per-message cost once.
    pub fn new(mesh: &Mesh2D, msgs: &[PMsg]) -> Self {
        let mut sorted: Vec<PMsg> = msgs.iter().copied().filter(|m| m.src != m.dst).collect();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut out = CachedFaultPhase {
            src: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            xy_links: Vec::new(),
            xy_off: Vec::with_capacity(n + 1),
            yx_links: Vec::new(),
            yx_off: Vec::with_capacity(n + 1),
            dur: Vec::with_capacity(n),
        };
        out.xy_off.push(0);
        out.yx_off.push(0);
        for m in &sorted {
            out.src.push(m.src as u32);
            out.dst.push(m.dst as u32);
            out.xy_links
                .extend(mesh.route_links(m.src, m.dst).map(|l| l.index() as u32));
            out.xy_off.push(out.xy_links.len() as u32);
            out.yx_links
                .extend(mesh.route_links_yx(m.src, m.dst).map(|l| l.index() as u32));
            out.yx_off.push(out.yx_links.len() as u32);
            out.dur
                .push(mesh.cost.p2p(mesh.hops(m.src, m.dst), m.bytes));
        }
        out
    }

    /// Number of scheduled (non-local) messages.
    pub fn len(&self) -> usize {
        self.dur.len()
    }

    /// True when no message crosses a link.
    pub fn is_empty(&self) -> bool {
        self.dur.is_empty()
    }
}

/// The compiled fault-simulation engine: one phase set, one fault plan,
/// many seeds. Compiles every phase once ([`CachedFaultPhase`]) and the
/// plan once ([`CompiledFaultPlan`]), then replays the whole run per
/// seed with zero routing or sorting work. Every replay is
/// **bit-identical** to the per-call oracle with the same seed
/// substituted into the plan
/// ([`PhaseSim::simulate_phases_faulty`] /
/// [`PhaseSim::simulate_phases_recovering`]) — pinned by differential
/// property tests.
#[derive(Debug, Clone)]
pub struct FaultSim {
    sim: PhaseSim,
    plan: CompiledFaultPlan,
    phases: Vec<Vec<PMsg>>,
    cached: Vec<CachedFaultPhase>,
    /// Folded-phase cache for the recovering path, keyed by
    /// `(phase index, unique deaths folded)` and holding the dropped
    /// (no-survivor) message count. Fold outcomes depend only on the
    /// plan's death order — never on the seed — so entries are reused
    /// across all replications.
    folded: BTreeMap<(usize, usize), (CachedFaultPhase, usize)>,
    /// Healthy overlapped prefix makespans — the adaptive policy's
    /// baseline. Computed lazily from the (plan-independent) phases on
    /// the first adaptive run; survives [`FaultSim::set_plan`].
    healthy_prefix: Option<Vec<u64>>,
}

impl FaultSim {
    /// Compile `phases` and `plan` for `mesh`.
    pub fn new(mesh: &Mesh2D, phases: &[Vec<PMsg>], plan: &FaultPlan) -> Self {
        FaultSim {
            sim: PhaseSim::new(mesh.clone()),
            plan: CompiledFaultPlan::new(plan, mesh),
            phases: phases.to_vec(),
            cached: phases
                .iter()
                .map(|p| CachedFaultPhase::new(mesh, p))
                .collect(),
            folded: BTreeMap::new(),
            healthy_prefix: None,
        }
    }

    /// The simulated machine.
    pub fn mesh(&self) -> &Mesh2D {
        self.sim.mesh()
    }

    /// The current fault plan.
    pub fn plan(&self) -> &FaultPlan {
        self.plan.plan()
    }

    /// Swap the fault plan, keeping the (plan-independent) compiled
    /// phases — the sweep fast path for evaluating one workload under
    /// many plans.
    pub fn set_plan(&mut self, plan: &FaultPlan) {
        self.plan = CompiledFaultPlan::new(plan, self.sim.mesh());
        self.folded.clear();
    }

    /// Replay the whole run once with `seed` substituted for the plan's:
    /// bit-identical to [`PhaseSim::simulate_phases_faulty_policy`] with
    /// `FaultPlan { seed, ..plan }` under the same `sched`.
    pub fn run_faulty(&mut self, seed: u64, sched: SchedulePolicy) -> FaultReport {
        match sched {
            SchedulePolicy::Fixed(ScheduleMode::Phased) => self.run_faulty_phased(seed),
            SchedulePolicy::Fixed(ScheduleMode::Overlapped(order)) => {
                self.run_faulty_overlapped(seed, order, None)
            }
            SchedulePolicy::Adaptive {
                inflation_threshold,
            } => self.run_faulty_overlapped(seed, OverlapOrder::Sorted, Some(inflation_threshold)),
        }
    }

    /// The historical phased replay: dependent phases back to back,
    /// per-phase clock, summed reports.
    fn run_faulty_phased(&mut self, seed: u64) -> FaultReport {
        let mut total = FaultReport::default();
        for (i, c) in self.cached.iter().enumerate() {
            let rep =
                self.sim
                    .run_cached_faulty_mode(c, &self.plan, seed.wrapping_add(i as u64), true);
            total.absorb(&rep);
        }
        total
    }

    /// Healthy overlapped prefix makespans (fault-free, `Sorted`) — the
    /// adaptive baseline, identical by construction to the oracle's
    /// [`PhaseSim::simulate_phases_overlapped_prefix`] on the raw
    /// phases. Plan-independent, so it survives [`FaultSim::set_plan`].
    fn healthy_overlapped_prefix(&mut self) -> Vec<u64> {
        if self.healthy_prefix.is_none() {
            self.healthy_prefix = Some(
                self.sim
                    .simulate_phases_overlapped_prefix(&self.phases, OverlapOrder::Sorted),
            );
        }
        self.healthy_prefix.clone().unwrap()
    }

    /// Compiled twin of the oracle's overlapped-faulty driver.
    fn run_faulty_overlapped(
        &mut self,
        seed: u64,
        order: OverlapOrder,
        adapt: Option<f64>,
    ) -> FaultReport {
        let adapt = adapt.map(|t| (t, self.healthy_overlapped_prefix()));
        self.sim.node_ready.fill(0);
        self.sim.node_arrival.fill(0);
        self.sim.begin_phase();
        let mut total = FaultReport::default();
        let mut clock = 0u64;
        let mut barrier = false;
        for (i, c) in self.cached.iter().enumerate() {
            let mut rep = self.sim.run_cached_overlapped_faulty_step(
                i > 0,
                c,
                &self.plan,
                seed.wrapping_add(i as u64),
                order,
                true,
                barrier,
                clock,
            );
            let advanced = clock.max(rep.makespan);
            rep.makespan = advanced - clock;
            clock = advanced;
            total.absorb(&rep);
            if let Some((threshold, prefix)) = &adapt {
                if !barrier && inflation_exceeded(clock, prefix[i], *threshold) {
                    barrier = true;
                    total.downgrades += 1;
                }
            }
        }
        total
    }

    /// Per-phase reports of the **phased** replay (same per-phase seed
    /// derivation, `seed + index`): the batch-API view of the guarantee
    /// that editing one phase never shifts another's fault stream.
    /// Overlapped runs have no per-phase decomposition — a phase's
    /// schedule depends on every earlier phase's arrivals.
    pub fn run_faulty_per_phase(&mut self, seed: u64) -> Vec<FaultReport> {
        self.cached
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.sim
                    .run_cached_faulty_mode(c, &self.plan, seed.wrapping_add(i as u64), true)
            })
            .collect()
    }

    /// Replay one faulty run per seed under `sched` — the Monte Carlo
    /// batch API. The compile cost is paid once, before the first seed.
    pub fn replay_faulty(&mut self, seeds: &[u64], sched: SchedulePolicy) -> Vec<FaultReport> {
        seeds.iter().map(|&s| self.run_faulty(s, sched)).collect()
    }

    /// Replay the checkpoint/rollback run once with `seed` substituted
    /// for the plan's: bit-identical to
    /// [`PhaseSim::simulate_phases_recovering_policy`] with
    /// `FaultPlan { seed, ..plan }` under the same `sched`.
    pub fn run_recovering(
        &mut self,
        policy: &CheckpointPolicy,
        seed: u64,
        sched: SchedulePolicy,
    ) -> FaultReport {
        match sched {
            SchedulePolicy::Fixed(ScheduleMode::Phased) => self.run_recovering_phased(policy, seed),
            SchedulePolicy::Fixed(ScheduleMode::Overlapped(order)) => {
                self.run_recovering_overlapped(policy, seed, order, None)
            }
            SchedulePolicy::Adaptive {
                inflation_threshold,
            } => self.run_recovering_overlapped(
                policy,
                seed,
                OverlapOrder::Sorted,
                Some(inflation_threshold),
            ),
        }
    }

    fn run_recovering_phased(&mut self, policy: &CheckpointPolicy, seed: u64) -> FaultReport {
        let FaultSim {
            sim,
            plan,
            phases,
            cached,
            folded,
            ..
        } = self;
        let mesh = sim.mesh().clone();
        let interval = policy.interval.max(1);
        let ring_cap = policy.ring.max(1);
        let deaths = plan.sorted_deaths();
        let mut total = FaultReport::default();
        // Deaths are precompiled in handling order ((t, node), stable),
        // so the oracle's scan for the earliest visible unhandled death
        // becomes one pointer: visibility is monotone along that order.
        let mut next_death = 0usize;
        // Unique deaths folded so far — the fold-table prefix in force.
        let mut k = 0usize;
        let mut ring: VecDeque<Checkpoint> = VecDeque::new();
        let mut now = 0u64;
        let mut frontier = 0usize;
        let mut i = 0usize;
        loop {
            let mut phase_end = now;
            let mut phase_rep: Option<(FaultReport, usize)> = None;
            if i < phases.len() {
                if i % interval == 0 && ring.back().is_none_or(|c| c.phase != i || c.elapsed != now)
                {
                    if ring.len() == ring_cap {
                        ring.pop_front();
                    }
                    ring.push_back(sim.checkpoint(i, now, total));
                    total.recovery.checkpoints += 1;
                    total.recovery.checkpoint_overhead_ns += policy.cost_ns;
                }
                let (phase, dropped): (&CachedFaultPhase, usize) = if k == 0 {
                    (&cached[i], 0)
                } else {
                    let entry = folded
                        .entry((i, k))
                        .or_insert_with(|| compile_folded(&mesh, plan, &phases[i], k));
                    (&entry.0, entry.1)
                };
                let seed_i = seed.wrapping_add(i as u64);
                let rep = sim.run_cached_faulty_mode(phase, plan, seed_i, false);
                phase_end = now + rep.makespan;
                phase_rep = Some((rep, dropped));
            }
            let visible = next_death < deaths.len() && {
                let d = &deaths[next_death];
                if phase_rep.is_some() {
                    d.detect <= phase_end
                } else {
                    d.t < now
                }
            };
            if visible {
                let d = &deaths[next_death];
                next_death += 1;
                total.recovery.detected += 1;
                if d.first {
                    total.recovery.folded_nodes += 1;
                }
                k = d.k_after;
                let pos = ring.iter().rposition(|c| c.elapsed <= d.t).unwrap_or(0);
                ring.truncate(pos + 1);
                let c = ring.back().expect("phase 0 is always checkpointed");
                total.recovery.lost_work_ns += phase_end - c.elapsed;
                let recovery = total.recovery;
                total = c.report;
                total.recovery = recovery;
                total.recovery.rollbacks += 1;
                now = c.elapsed;
                i = c.phase;
                sim.restore(c);
                continue;
            }
            let Some((rep, dropped)) = phase_rep else {
                break;
            };
            total.absorb(&rep);
            total.messages += dropped;
            total.lost += dropped;
            total.black_holes += dropped as u64;
            now = phase_end;
            if i < frontier {
                total.recovery.replayed_phases += 1;
            } else {
                frontier = i + 1;
            }
            i += 1;
        }
        total.recovery.deaths = next_death;
        total
    }

    /// Compiled twin of the oracle's overlapped recovering driver: the
    /// same checkpoint/rollback structure as the phased replay, with
    /// the overlapped step, [`OverlapCheckpoint`] snapshots and
    /// (optionally) adaptive degradation.
    fn run_recovering_overlapped(
        &mut self,
        policy: &CheckpointPolicy,
        seed: u64,
        order: OverlapOrder,
        adapt: Option<f64>,
    ) -> FaultReport {
        let adapt = adapt.map(|t| (t, self.healthy_overlapped_prefix()));
        let FaultSim {
            sim,
            plan,
            phases,
            cached,
            folded,
            ..
        } = self;
        let mesh = sim.mesh().clone();
        let interval = policy.interval.max(1);
        let ring_cap = policy.ring.max(1);
        let deaths = plan.sorted_deaths();
        sim.node_ready.fill(0);
        sim.node_arrival.fill(0);
        sim.begin_phase();
        let mut total = FaultReport::default();
        let mut next_death = 0usize;
        let mut k = 0usize;
        let mut ring: VecDeque<OverlapCheckpoint> = VecDeque::new();
        let mut now = 0u64;
        let mut barrier = false;
        let mut frontier = 0usize;
        let mut i = 0usize;
        loop {
            let mut phase_end = now;
            let mut phase_rep: Option<(FaultReport, usize)> = None;
            if i < phases.len() {
                if i % interval == 0
                    && ring
                        .back()
                        .is_none_or(|c| c.base.phase != i || c.base.elapsed != now)
                {
                    if ring.len() == ring_cap {
                        ring.pop_front();
                    }
                    ring.push_back(sim.checkpoint_overlapped(i, now, total, barrier));
                    total.recovery.checkpoints += 1;
                    total.recovery.checkpoint_overhead_ns += policy.cost_ns;
                }
                let (phase, dropped): (&CachedFaultPhase, usize) = if k == 0 {
                    (&cached[i], 0)
                } else {
                    let entry = folded
                        .entry((i, k))
                        .or_insert_with(|| compile_folded(&mesh, plan, &phases[i], k));
                    (&entry.0, entry.1)
                };
                let mut rep = sim.run_cached_overlapped_faulty_step(
                    i > 0,
                    phase,
                    plan,
                    seed.wrapping_add(i as u64),
                    order,
                    false,
                    barrier,
                    now,
                );
                phase_end = now.max(rep.makespan);
                rep.makespan = phase_end - now;
                phase_rep = Some((rep, dropped));
            }
            let visible = next_death < deaths.len() && {
                let d = &deaths[next_death];
                if phase_rep.is_some() {
                    d.detect <= phase_end
                } else {
                    d.t < now
                }
            };
            if visible {
                let d = &deaths[next_death];
                next_death += 1;
                total.recovery.detected += 1;
                if d.first {
                    total.recovery.folded_nodes += 1;
                }
                k = d.k_after;
                let pos = ring
                    .iter()
                    .rposition(|c| c.base.elapsed <= d.t)
                    .unwrap_or(0);
                ring.truncate(pos + 1);
                let c = ring.back().expect("phase 0 is always checkpointed");
                total.recovery.lost_work_ns += phase_end - c.base.elapsed;
                let recovery = total.recovery;
                total = c.base.report;
                total.recovery = recovery;
                total.recovery.rollbacks += 1;
                now = c.base.elapsed;
                i = c.base.phase;
                barrier = c.barrier;
                sim.restore_overlapped(c);
                continue;
            }
            let Some((rep, dropped)) = phase_rep else {
                break;
            };
            total.absorb(&rep);
            total.messages += dropped;
            total.lost += dropped;
            total.black_holes += dropped as u64;
            now = phase_end;
            if let Some((threshold, prefix)) = &adapt {
                if !barrier && inflation_exceeded(now, prefix[i], *threshold) {
                    barrier = true;
                    total.downgrades += 1;
                }
            }
            if i < frontier {
                total.recovery.replayed_phases += 1;
            } else {
                frontier = i + 1;
            }
            i += 1;
        }
        total.recovery.deaths = next_death;
        total
    }

    /// Replay one recovering run per seed under `sched` — the Monte
    /// Carlo batch API for the checkpoint/rollback path. Folded phases
    /// are compiled lazily on the first seed that needs them and reused
    /// by the rest.
    pub fn replay_recovering(
        &mut self,
        policy: &CheckpointPolicy,
        seeds: &[u64],
        sched: SchedulePolicy,
    ) -> Vec<FaultReport> {
        seeds
            .iter()
            .map(|&s| self.run_recovering(policy, s, sched))
            .collect()
    }
}

/// Fold one raw phase for the first `k` unique deaths and compile it:
/// the compiled twin of the recovering oracle's per-message
/// [`fold_target`] block, returning the dropped (no-survivor) count.
fn compile_folded(
    mesh: &Mesh2D,
    plan: &CompiledFaultPlan,
    raw: &[PMsg],
    k: usize,
) -> (CachedFaultPhase, usize) {
    let mut folded = Vec::with_capacity(raw.len());
    let mut dropped = 0usize;
    for m in raw {
        match (plan.fold_lookup(k, m.src), plan.fold_lookup(k, m.dst)) {
            (Some(src), Some(dst)) => folded.push(PMsg { src, dst, ..*m }),
            _ => dropped += 1,
        }
    }
    (CachedFaultPhase::new(mesh, &folded), dropped)
}

/// Fan a batch of *independent* phases out over worker threads, one
/// [`PhaseSim`] per thread; returns each phase's makespan in input order.
pub fn simulate_phases_batch(mesh: &Mesh2D, phases: &[Vec<PMsg>], threads: usize) -> Vec<u64> {
    crate::sweep::par_sweep_with(
        phases,
        threads,
        || PhaseSim::new(mesh.clone()),
        |sim, phase| sim.simulate_phase(phase),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;

    fn mesh(px: usize, py: usize) -> Mesh2D {
        Mesh2D::new(px, py, CostModel::paragon())
    }

    fn mixed_phase(mesh: &Mesh2D, n: usize, seed: u64) -> Vec<PMsg> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
                PMsg {
                    src: (h % mesh.nodes() as u64) as usize,
                    dst: ((h >> 17) % mesh.nodes() as u64) as usize,
                    bytes: 1 + (h >> 40) % 1000,
                }
            })
            .collect()
    }

    #[test]
    fn matches_oracle_across_reuses() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        for seed in 0..20 {
            let msgs = mixed_phase(&m, 3 * seed as usize, seed);
            assert_eq!(
                sim.simulate_phase(&msgs),
                m.simulate_phase(&msgs),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_oracle_on_degenerate_phases() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        assert_eq!(sim.simulate_phase(&[]), 0);
        let local = [PMsg {
            src: 3,
            dst: 3,
            bytes: 999,
        }];
        assert_eq!(sim.simulate_phase(&local), 0);
        // A phase after an empty phase still schedules correctly.
        let msgs = mixed_phase(&m, 12, 7);
        assert_eq!(sim.simulate_phase(&msgs), m.simulate_phase(&msgs));
    }

    #[test]
    fn phases_sum_like_mesh() {
        let m = mesh(4, 2);
        let phases: Vec<Vec<PMsg>> = (0..5).map(|s| mixed_phase(&m, 6, s)).collect();
        let mut sim = PhaseSim::new(m.clone());
        assert_eq!(sim.simulate_phases(&phases), m.simulate_phases(&phases));
    }

    #[test]
    fn cached_phase_replays_identically() {
        let m = mesh(8, 4);
        let msgs = mixed_phase(&m, 40, 3);
        let cached = CachedPhase::new(&m, &msgs);
        let mut sim = PhaseSim::new(m.clone());
        assert_eq!(sim.run_cached(&cached), m.simulate_phase(&msgs));
        // Scaled replay equals simulating the scaled message set.
        let scaled: Vec<PMsg> = msgs
            .iter()
            .map(|x| PMsg {
                bytes: x.bytes * 16,
                ..*x
            })
            .collect();
        assert_eq!(
            sim.run_cached_scaled(&cached, 16),
            m.simulate_phase(&scaled)
        );
        assert_eq!(
            cached.len(),
            scaled.iter().filter(|x| x.src != x.dst).count()
        );
    }

    #[test]
    fn batch_matches_serial() {
        let m = mesh(8, 4);
        let phases: Vec<Vec<PMsg>> = (0..9)
            .map(|s| mixed_phase(&m, 10 + s as usize, s))
            .collect();
        let serial: Vec<u64> = phases.iter().map(|p| m.simulate_phase(p)).collect();
        assert_eq!(simulate_phases_batch(&m, &phases, 4), serial);
        assert_eq!(simulate_phases_batch(&m, &phases, 1), serial);
    }

    #[test]
    fn zero_fault_plan_matches_fast_path_bit_for_bit() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        let plan = crate::FaultPlan::none();
        for seed in 0..10 {
            let msgs = mixed_phase(&m, 4 * seed as usize, seed);
            let rep = sim.simulate_phase_faulty(&msgs, &plan);
            assert_eq!(rep.makespan, m.simulate_phase(&msgs), "seed {seed}");
            assert_eq!(rep.delivered, rep.messages);
            assert_eq!(rep.lost, 0);
            assert_eq!(
                rep.retries + rep.duplicates + rep.reroutes + rep.deferrals,
                0
            );
        }
    }

    #[test]
    fn total_drop_with_retry_still_delivers_everything() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        let plan = crate::FaultPlan::with_drop(7, 1.0);
        let msgs = mixed_phase(&m, 20, 3);
        let rep = sim.simulate_phase_faulty(&msgs, &plan);
        assert_eq!(rep.delivered, rep.messages);
        assert_eq!(rep.lost, 0);
        assert_eq!(rep.escalations as usize, rep.messages);
        assert!(rep.retries > 0);
        assert!(rep.makespan >= m.simulate_phase(&msgs));
    }

    #[test]
    fn total_drop_without_retry_loses_everything() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        let plan = crate::FaultPlan {
            retry: crate::RetryPolicy::disabled(),
            ..crate::FaultPlan::with_drop(7, 1.0)
        };
        let msgs = mixed_phase(&m, 20, 3);
        let rep = sim.simulate_phase_faulty(&msgs, &plan);
        assert_eq!(rep.delivered, 0);
        assert_eq!(rep.lost, rep.messages);
        assert_eq!(rep.delivered_fraction(), 0.0);
        assert_eq!(rep.attempts as usize, rep.messages);
    }

    #[test]
    fn faulty_schedule_is_deterministic_per_seed() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        let plan = crate::FaultPlan {
            dup_prob: 0.2,
            ..crate::FaultPlan::with_drop(99, 0.3)
        };
        let msgs = mixed_phase(&m, 30, 5);
        let a = sim.simulate_phase_faulty(&msgs, &plan);
        let b = sim.simulate_phase_faulty(&msgs, &plan);
        assert_eq!(a, b, "same plan must replay identically");
        let other = crate::FaultPlan {
            seed: 100,
            ..plan.clone()
        };
        let c = sim.simulate_phase_faulty(&msgs, &other);
        assert!(
            a != c || a.attempts == a.messages as u64,
            "different seeds should draw different fault sequences"
        );
    }

    #[test]
    fn dead_link_triggers_yx_reroute() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        let msg = [PMsg {
            src: m.node_id(0, 0),
            dst: m.node_id(3, 2),
            bytes: 64,
        }];
        // Kill the first XY link (rightward out of (0,0)) forever-ish.
        let mut plan = crate::FaultPlan::none();
        plan.link_outages.push(crate::LinkOutage {
            link: m.h_link(0, 0, true).index(),
            from: 0,
            until: u64::MAX / 2,
        });
        let rep = sim.simulate_phase_faulty(&msg, &plan);
        assert_eq!(rep.delivered, 1);
        assert_eq!(rep.reroutes, 1);
        assert_eq!(rep.deferrals, 0);
        // Same hop count on the YX route: same cost as the healthy run.
        assert_eq!(rep.makespan, m.simulate_phase(&msg));
    }

    #[test]
    fn dead_link_on_both_routes_defers_to_window_end() {
        let m = mesh(4, 1); // 1-D mesh: no YX escape route.
        let mut sim = PhaseSim::new(m.clone());
        let msg = [PMsg {
            src: 0,
            dst: 3,
            bytes: 64,
        }];
        let mut plan = crate::FaultPlan::none();
        plan.link_outages.push(crate::LinkOutage {
            link: m.h_link(1, 0, true).index(),
            from: 0,
            until: 5_000_000,
        });
        let rep = sim.simulate_phase_faulty(&msg, &plan);
        assert_eq!(rep.delivered, 1);
        assert!(rep.deferrals > 0);
        assert_eq!(rep.makespan, 5_000_000 + m.simulate_phase(&msg));
    }

    #[test]
    fn dead_node_defers_the_send() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        let msg = [PMsg {
            src: 0,
            dst: 5,
            bytes: 64,
        }];
        let mut plan = crate::FaultPlan::none();
        plan.node_outages.push(crate::NodeOutage {
            node: 0,
            from: 0,
            until: 1_000_000,
        });
        let rep = sim.simulate_phase_faulty(&msg, &plan);
        assert_eq!(rep.delivered, 1);
        assert!(rep.deferrals > 0);
        assert_eq!(rep.makespan, 1_000_000 + m.simulate_phase(&msg));
    }

    #[test]
    fn certain_duplication_doubles_attempts_not_deliveries() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        let plan = crate::FaultPlan {
            dup_prob: 1.0,
            ..crate::FaultPlan::none()
        };
        let msgs = mixed_phase(&m, 20, 11);
        let rep = sim.simulate_phase_faulty(&msgs, &plan);
        assert_eq!(rep.delivered, rep.messages);
        assert_eq!(rep.duplicates as usize, rep.messages);
        assert_eq!(rep.attempts as usize, 2 * rep.messages);
        assert!(rep.makespan >= m.simulate_phase(&msgs));
    }

    #[test]
    fn multi_phase_faulty_reports_sum_and_replay() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        let phases: Vec<Vec<PMsg>> = (0..4).map(|s| mixed_phase(&m, 10, s)).collect();
        let plan = crate::FaultPlan::with_drop(5, 0.4);
        let a = sim.simulate_phases_faulty(&phases, &plan);
        let b = sim.simulate_phases_faulty(&phases, &plan);
        assert_eq!(a, b);
        assert_eq!(a.delivered, a.messages, "retry must deliver everything");
        // Zero-fault multi-phase equals the unfaulted total.
        let rep = sim.simulate_phases_faulty(&phases, &crate::FaultPlan::none());
        assert_eq!(rep.makespan, m.simulate_phases(&phases));
    }

    #[test]
    fn dead_endpoint_black_holes_without_recovery() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        let mut plan = crate::FaultPlan::none();
        plan.node_deaths.push(crate::NodeDeath { node: 5, t: 0 });
        let msgs = [
            PMsg {
                src: 0,
                dst: 5,
                bytes: 64,
            },
            PMsg {
                src: 2,
                dst: 3,
                bytes: 64,
            },
        ];
        let rep = sim.simulate_phase_faulty(&msgs, &plan);
        assert_eq!(rep.messages, 2);
        assert_eq!(rep.delivered, 1);
        assert_eq!(rep.lost, 1);
        assert_eq!(rep.black_holes, 1);
    }

    #[test]
    fn zero_death_recovery_bit_identical() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        let phases: Vec<Vec<PMsg>> = (0..10).map(|s| mixed_phase(&m, 12, s)).collect();
        let policy = CheckpointPolicy::default();
        let rep = sim.simulate_phases_recovering(&phases, &crate::FaultPlan::none(), &policy);
        assert_eq!(rep.makespan, m.simulate_phases(&phases));
        assert_eq!(rep.recovery.rollbacks, 0);
        assert_eq!(rep.recovery.lost_work_ns, 0);
        assert!(rep.recovery.checkpoints > 0);
        assert!(rep.wall_clock_ns() > rep.makespan, "overhead is accounted");
        // Transport faults without deaths: same as simulate_phases_faulty.
        let plan = crate::FaultPlan::with_drop(3, 0.2);
        let a = sim.simulate_phases_recovering(&phases, &plan, &policy);
        let b = sim.simulate_phases_faulty(&phases, &plan);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn death_mid_run_is_recovered() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        let phases: Vec<Vec<PMsg>> = (0..12).map(|s| mixed_phase(&m, 10, s)).collect();
        let healthy = m.simulate_phases(&phases);
        let mut plan = crate::FaultPlan::none();
        plan.node_deaths.push(crate::NodeDeath {
            node: 5,
            t: healthy / 2,
        });
        plan.detection_latency = 10_000;
        let rep = sim.simulate_phases_recovering(&phases, &plan, &CheckpointPolicy::default());
        assert!(rep.recovery.all_recovered(), "{:?}", rep.recovery);
        assert_eq!(rep.recovery.deaths, 1);
        assert_eq!(rep.recovery.rollbacks, 1);
        assert_eq!(rep.recovery.folded_nodes, 1);
        assert!(rep.recovery.lost_work_ns > 0);
        assert!(rep.recovery.replayed_phases > 0);
        // Exactly-once on the committed run, with no black holes: every
        // message was folded onto a survivor before the replay.
        assert_eq!(rep.delivered, rep.messages);
        assert_eq!(rep.lost, 0);
        assert_eq!(rep.black_holes, 0);
        // Determinism: the identical plan replays bit-for-bit.
        let again = sim.simulate_phases_recovering(&phases, &plan, &CheckpointPolicy::default());
        assert_eq!(rep, again);
    }

    #[test]
    fn death_near_end_detected_by_final_sweep() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        let phases: Vec<Vec<PMsg>> = (0..6).map(|s| mixed_phase(&m, 10, s)).collect();
        let healthy = m.simulate_phases(&phases);
        // Death just before the end, detection latency far past it: only
        // the end-of-run sweep can catch this one.
        let mut plan = crate::FaultPlan::none();
        plan.node_deaths.push(crate::NodeDeath {
            node: 9,
            t: healthy.saturating_sub(1),
        });
        plan.detection_latency = u64::MAX / 2;
        let rep = sim.simulate_phases_recovering(&phases, &plan, &CheckpointPolicy::default());
        assert!(rep.recovery.all_recovered(), "{:?}", rep.recovery);
        assert_eq!(rep.delivered, rep.messages);
    }

    #[test]
    fn tiny_ring_still_recovers_with_more_lost_work() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        let phases: Vec<Vec<PMsg>> = (0..16).map(|s| mixed_phase(&m, 10, s)).collect();
        let healthy = m.simulate_phases(&phases);
        let mut plan = crate::FaultPlan::none();
        plan.node_deaths.push(crate::NodeDeath {
            node: 2,
            t: healthy / 4,
        });
        // Detection long after the death: a deep ring can roll back to
        // just before the death; a 1-deep ring must fall back to its only
        // (more recent... or evicted-to-oldest) snapshot.
        plan.detection_latency = healthy / 2;
        let deep = CheckpointPolicy {
            interval: 1,
            ring: 64,
            cost_ns: 0,
        };
        let shallow = CheckpointPolicy {
            interval: 1,
            ring: 1,
            cost_ns: 0,
        };
        let a = sim.simulate_phases_recovering(&phases, &plan, &deep);
        let b = sim.simulate_phases_recovering(&phases, &plan, &shallow);
        assert!(a.recovery.all_recovered());
        assert!(b.recovery.all_recovered());
        // With ring=1 the only snapshot is the most recent boundary,
        // which is *after* the death — the replay restarts there anyway
        // (best effort) and both runs still deliver everything.
        assert_eq!(a.delivered, a.messages);
        assert_eq!(b.delivered, b.messages);
    }

    #[test]
    fn checkpoint_interval_trades_overhead_for_lost_work() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        let phases: Vec<Vec<PMsg>> = (0..24).map(|s| mixed_phase(&m, 10, s)).collect();
        let healthy = m.simulate_phases(&phases);
        let mut plan = crate::FaultPlan::none();
        plan.node_deaths.push(crate::NodeDeath {
            node: 6,
            t: healthy / 2,
        });
        let fine = CheckpointPolicy {
            interval: 1,
            ring: 64,
            cost_ns: 25_000,
        };
        let coarse = CheckpointPolicy {
            interval: 12,
            ring: 64,
            cost_ns: 25_000,
        };
        let a = sim.simulate_phases_recovering(&phases, &plan, &fine);
        let b = sim.simulate_phases_recovering(&phases, &plan, &coarse);
        assert!(a.recovery.checkpoints > b.recovery.checkpoints);
        assert!(a.recovery.checkpoint_overhead_ns > b.recovery.checkpoint_overhead_ns);
        assert!(
            a.recovery.lost_work_ns <= b.recovery.lost_work_ns,
            "finer checkpoints cannot lose more work: {} vs {}",
            a.recovery.lost_work_ns,
            b.recovery.lost_work_ns
        );
    }

    #[test]
    fn two_deaths_fold_onto_survivors() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        let phases: Vec<Vec<PMsg>> = (0..12).map(|s| mixed_phase(&m, 12, s)).collect();
        let healthy = m.simulate_phases(&phases);
        let mut plan = crate::FaultPlan::none();
        plan.node_deaths.push(crate::NodeDeath {
            node: 5,
            t: healthy / 4,
        });
        plan.node_deaths.push(crate::NodeDeath {
            node: 10,
            t: healthy / 2,
        });
        let rep = sim.simulate_phases_recovering(&phases, &plan, &CheckpointPolicy::default());
        assert!(rep.recovery.all_recovered(), "{:?}", rep.recovery);
        assert_eq!(rep.recovery.deaths, 2);
        assert_eq!(rep.recovery.folded_nodes, 2);
        assert!(rep.recovery.rollbacks >= 2);
        assert_eq!(rep.delivered, rep.messages);
        assert_eq!(rep.black_holes, 0);
    }

    #[test]
    fn duplicate_retransmit_reuses_scanned_route() {
        // dup_prob = 1: the duplicate goes out back to back on the same
        // route, so the makespan is exactly two transmissions. Pins the
        // fixed duplicate branch (no second route scan — the links were
        // just reserved to `end`, so the retransmission starts there).
        let m = mesh(4, 1);
        let mut sim = PhaseSim::new(m.clone());
        let msg = [PMsg {
            src: 0,
            dst: 3,
            bytes: 64,
        }];
        let plan = crate::FaultPlan {
            dup_prob: 1.0,
            ..crate::FaultPlan::none()
        };
        let rep = sim.simulate_phase_faulty(&msg, &plan);
        assert_eq!(rep.makespan, 2 * m.cost.p2p(3, 64));
        assert_eq!(rep.duplicates, 1);
        assert_eq!(rep.attempts, 2);
        // The compiled replay agrees bit for bit.
        let cached = CachedFaultPhase::new(&m, &msg);
        let compiled = CompiledFaultPlan::new(&plan, &m);
        assert_eq!(sim.run_cached_faulty(&cached, &compiled, plan.seed), rep);
    }

    #[test]
    fn compiled_faulty_replay_matches_oracle() {
        let m = mesh(8, 4);
        let mut sim = PhaseSim::new(m.clone());
        let phases: Vec<Vec<PMsg>> = (0..5).map(|s| mixed_phase(&m, 25, s)).collect();
        // Outages on both routes of some messages, a node window, a
        // death, drops and duplicates: every transport branch is live.
        let mut plan = crate::FaultPlan {
            dup_prob: 0.1,
            ..crate::FaultPlan::with_drop(21, 0.3)
        };
        plan.link_outages.push(crate::LinkOutage {
            link: m.h_link(2, 1, true).index(),
            from: 0,
            until: 300_000,
        });
        plan.link_outages.push(crate::LinkOutage {
            link: m.v_link(4, 0, false).index(),
            from: 50_000,
            until: 400_000,
        });
        plan.node_outages.push(crate::NodeOutage {
            node: 9,
            from: 0,
            until: 200_000,
        });
        plan.node_deaths.push(crate::NodeDeath {
            node: 17,
            t: 100_000,
        });
        let mut engine = FaultSim::new(&m, &phases, &plan);
        for seed in [plan.seed, 0, 7, 123_456] {
            let seeded = crate::FaultPlan {
                seed,
                ..plan.clone()
            };
            assert_eq!(
                engine.run_faulty(seed, SchedulePolicy::default()),
                sim.simulate_phases_faulty(&phases, &seeded),
                "seed {seed}"
            );
        }
        let seeds = [3u64, 3, 99];
        let batch = engine.replay_faulty(&seeds, SchedulePolicy::default());
        assert_eq!(batch[0], batch[1], "same seed replays identically");
        let per_phase = engine.run_faulty_per_phase(plan.seed);
        let mut summed = FaultReport::default();
        for rep in &per_phase {
            summed.absorb(rep);
        }
        assert_eq!(
            summed,
            engine.run_faulty(plan.seed, SchedulePolicy::default())
        );
    }

    #[test]
    fn compiled_recovering_replay_matches_oracle() {
        let m = mesh(4, 4);
        let mut sim = PhaseSim::new(m.clone());
        let phases: Vec<Vec<PMsg>> = (0..12).map(|s| mixed_phase(&m, 10, s)).collect();
        let healthy = m.simulate_phases(&phases);
        let mut plan = crate::FaultPlan::with_drop(5, 0.15);
        plan.node_deaths.push(crate::NodeDeath {
            node: 5,
            t: healthy / 4,
        });
        plan.node_deaths.push(crate::NodeDeath {
            node: 10,
            t: healthy / 2,
        });
        plan.detection_latency = 10_000;
        let policy = CheckpointPolicy {
            interval: 2,
            ring: 4,
            cost_ns: 25_000,
        };
        let mut engine = FaultSim::new(&m, &phases, &plan);
        for seed in [plan.seed, 0, 41] {
            let seeded = crate::FaultPlan {
                seed,
                ..plan.clone()
            };
            assert_eq!(
                engine.run_recovering(&policy, seed, SchedulePolicy::default()),
                sim.simulate_phases_recovering(&phases, &seeded, &policy),
                "seed {seed}"
            );
        }
        // The batch API reuses folded-phase compilations across seeds.
        let seeds = [9u64, 9, 2];
        let batch = engine.replay_recovering(&policy, &seeds, SchedulePolicy::default());
        assert_eq!(batch[0], batch[1]);
        assert!(batch.iter().all(|r| r.recovery.all_recovered()));
        // Swapping the plan recompiles: a death-free plan through the
        // same engine matches the unfaulted scheduler.
        engine.set_plan(&crate::FaultPlan::none());
        let zero =
            engine.run_recovering(&CheckpointPolicy::default(), 0, SchedulePolicy::default());
        assert_eq!(zero.makespan, healthy);
        assert_eq!(zero.recovery.rollbacks, 0);
    }

    #[test]
    fn epoch_reset_isolates_phases() {
        // A heavy phase must not leak reservations into the next one.
        let m = mesh(4, 1);
        let mut sim = PhaseSim::new(m.clone());
        let heavy = [PMsg {
            src: 0,
            dst: 3,
            bytes: 1 << 20,
        }];
        let light = [PMsg {
            src: 0,
            dst: 1,
            bytes: 1,
        }];
        sim.simulate_phase(&heavy);
        assert_eq!(sim.simulate_phase(&light), m.simulate_phase(&light));
    }
}
