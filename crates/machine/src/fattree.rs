//! A CM-5-like machine: 4-ary fat-tree data network plus a dedicated
//! control network with hardware broadcast / reduction / scan.
//!
//! Point-to-point traffic climbs the tree to the lowest common ancestor
//! and descends; every tree edge (up and down directions separately) is a
//! serializing resource, which is what makes irregular *general affine*
//! communications expensive relative to the hardware collectives — the
//! phenomenon behind Table 1 of the paper.

use crate::fault::FaultPlan;
use crate::model::{CostModel, PMsg};

/// The fat-tree machine.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Number of leaf processors (rounded up to a power of `arity`).
    pub nprocs: usize,
    /// Tree arity (4 for the CM-5).
    pub arity: usize,
    /// Cost model (use [`CostModel::cm5`]).
    pub cost: CostModel,
    /// Parallel lanes per tree edge, indexed by level (level 0 = above
    /// the leaves). A *fat* tree widens toward the root; the default is
    /// one lane everywhere (the conservative model).
    pub lanes: Vec<usize>,
    levels: usize,
}

impl FatTree {
    /// Build a fat tree over `nprocs` leaves with the given arity and one
    /// lane per edge (the conservative contention model).
    pub fn new(nprocs: usize, arity: usize, cost: CostModel) -> Self {
        Self::with_lanes(nprocs, arity, cost, &[])
    }

    /// Build with explicit per-level lane counts (missing levels get 1).
    /// `FatTree::with_lanes(32, 4, cm5, &[1, 2, 4])` models a tree whose
    /// bandwidth doubles per level toward the root, like the real CM-5
    /// data network.
    pub fn with_lanes(nprocs: usize, arity: usize, cost: CostModel, lanes: &[usize]) -> Self {
        assert!(nprocs > 0 && arity >= 2);
        assert!(lanes.iter().all(|&l| l > 0), "lane counts must be positive");
        let mut levels = 0;
        let mut span = 1;
        while span < nprocs {
            span *= arity;
            levels += 1;
        }
        let mut lanes = lanes.to_vec();
        lanes.resize(levels.max(lanes.len()), 1);
        FatTree {
            nprocs,
            arity,
            cost,
            lanes,
            levels,
        }
    }

    /// Height of the tree (number of edge levels above the leaves).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Level of the lowest common ancestor of two leaves (1-based; 0 means
    /// same leaf).
    pub fn lca_level(&self, a: usize, b: usize) -> usize {
        let (mut a, mut b) = (a, b);
        let mut lvl = 0;
        while a != b {
            a /= self.arity;
            b /= self.arity;
            lvl += 1;
        }
        lvl
    }

    /// The serializing resources of a route: `(level, group, up?)` edges.
    /// Edge at level `l` above group `g` connects `g` to its parent.
    fn route_edges(&self, src: usize, dst: usize) -> Vec<(usize, usize, bool)> {
        let top = self.lca_level(src, dst);
        let mut edges = Vec::with_capacity(2 * top);
        let mut g = src;
        for l in 0..top {
            edges.push((l, g, true));
            g /= self.arity;
        }
        // Descend to dst: gather the groups on the way down.
        let mut down = Vec::with_capacity(top);
        let mut h = dst;
        for l in 0..top {
            down.push((l, h, false));
            h /= self.arity;
        }
        edges.extend(down.into_iter().rev());
        edges
    }

    /// Simulate a point-to-point phase on the data network (greedy
    /// whole-route reservation, like the mesh). Each tree edge offers
    /// `lanes[level]` parallel lanes; a message takes the earliest-free
    /// lane on every edge of its route. Returns the makespan.
    pub fn simulate_phase(&self, msgs: &[PMsg]) -> u64 {
        use std::collections::HashMap;
        // (level, group, up) -> per-lane free times.
        let mut free: HashMap<(usize, usize, bool), Vec<u64>> = HashMap::new();
        let mut msgs: Vec<PMsg> = msgs.iter().copied().filter(|m| m.src != m.dst).collect();
        msgs.sort();
        let mut makespan = 0;
        for m in &msgs {
            let edges = self.route_edges(m.src, m.dst);
            let dur = self.cost.p2p(edges.len(), m.bytes);
            // Pick the earliest-free lane per edge; start when all chosen
            // lanes are free.
            let mut chosen: Vec<((usize, usize, bool), usize)> = Vec::with_capacity(edges.len());
            let mut start = 0u64;
            for e in &edges {
                let nlanes = self.lanes.get(e.0).copied().unwrap_or(1);
                let lanes = free.entry(*e).or_insert_with(|| vec![0; nlanes]);
                let (lane, &t) = lanes
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .expect("at least one lane");
                chosen.push((*e, lane));
                start = start.max(t);
            }
            let end = start + dur;
            for (e, lane) in chosen {
                free.get_mut(&e).expect("entry created above")[lane] = end;
            }
            makespan = makespan.max(end);
        }
        makespan
    }

    /// Hardware broadcast over the control network: one source, `p`
    /// participants, `bytes` payload.
    pub fn hw_broadcast(&self, participants: usize, bytes: u64) -> u64 {
        self.cost.ctrl_collective(participants, bytes)
    }

    /// Hardware reduction (same control-network price as broadcast on the
    /// CM-5; the combine happens in the tree).
    pub fn hw_reduce(&self, participants: usize, bytes: u64) -> u64 {
        self.cost.ctrl_collective(participants, bytes)
    }

    /// Hardware scatter/gather: the control network coordinates, but the
    /// data still flows from/to one leaf — price one serialized stream
    /// plus the collective start-up.
    pub fn hw_scatter(&self, participants: usize, bytes_each: u64) -> u64 {
        self.cost.ctrl_collective(participants, 0)
            + participants as u64 * bytes_each * self.cost.per_byte
    }

    /// Software broadcast over the *data* network: a binomial recursive-
    /// halving tree among leaves `0..participants` (the same schedule the
    /// mesh collectives use — each holder forwards to the middle of its
    /// segment, so one round's messages take disjoint subtrees). This is
    /// the degraded-mode fallback when the control network is down.
    pub fn sw_broadcast(&self, participants: usize, bytes: u64) -> u64 {
        let p = participants.min(self.nprocs);
        if p <= 1 {
            return 0;
        }
        let mut total = 0u64;
        let mut stride = 1usize;
        while stride * 2 < p {
            stride *= 2;
        }
        while stride >= 1 {
            let mut phase = Vec::new();
            let mut x = 0;
            while x + stride < p {
                phase.push(PMsg {
                    src: x,
                    dst: x + stride,
                    bytes,
                });
                x += 2 * stride;
            }
            total += self.simulate_phase(&phase);
            if stride == 1 {
                break;
            }
            stride /= 2;
        }
        total
    }

    /// Software reduction over the data network (mirror of
    /// [`FatTree::sw_broadcast`] — identical cost in this model).
    pub fn sw_reduce(&self, participants: usize, bytes: u64) -> u64 {
        self.sw_broadcast(participants, bytes)
    }

    /// Leaves of `0..participants` still alive at time `t` under the
    /// plan's permanent deaths ([`FaultPlan::death_time`]).
    pub fn live_participants(&self, participants: usize, plan: &FaultPlan, t: u64) -> usize {
        (0..participants.min(self.nprocs))
            .filter(|&p| plan.death_time(p).is_none_or(|d| t < d))
            .count()
    }

    /// Broadcast under a fault plan: the hardware control network when
    /// available, the software binomial tree when
    /// [`FaultPlan::ctrl_outage`] marks it down (the CM-5 degraded mode).
    pub fn broadcast_time(&self, participants: usize, bytes: u64, plan: &FaultPlan) -> u64 {
        self.broadcast_time_at(participants, bytes, plan, 0)
    }

    /// [`FatTree::broadcast_time`] evaluated at time `t`: permanently
    /// dead leaves have been folded out of the collective by the recovery
    /// layer, so only the live participants pay.
    pub fn broadcast_time_at(
        &self,
        participants: usize,
        bytes: u64,
        plan: &FaultPlan,
        t: u64,
    ) -> u64 {
        let live = self.live_participants(participants, plan, t);
        if plan.ctrl_outage {
            self.sw_broadcast(live, bytes)
        } else {
            self.hw_broadcast(live, bytes)
        }
    }

    /// Reduction under a fault plan (see [`FatTree::broadcast_time`]).
    pub fn reduce_time(&self, participants: usize, bytes: u64, plan: &FaultPlan) -> u64 {
        self.reduce_time_at(participants, bytes, plan, 0)
    }

    /// [`FatTree::reduce_time`] evaluated at time `t` (dead leaves folded
    /// out, like [`FatTree::broadcast_time_at`]).
    pub fn reduce_time_at(&self, participants: usize, bytes: u64, plan: &FaultPlan, t: u64) -> u64 {
        let live = self.live_participants(participants, plan, t);
        if plan.ctrl_outage {
            self.sw_reduce(live, bytes)
        } else {
            self.hw_reduce(live, bytes)
        }
    }

    /// A translation (uniform shift by `delta` leaves, toroidal): each
    /// processor sends one message to `(i + delta) mod nprocs`.
    pub fn translation(&self, delta: usize, bytes: u64) -> u64 {
        let msgs: Vec<PMsg> = (0..self.nprocs)
            .map(|i| PMsg {
                src: i,
                dst: (i + delta) % self.nprocs,
                bytes,
            })
            .collect();
        self.simulate_phase(&msgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> FatTree {
        FatTree::new(32, 4, CostModel::cm5())
    }

    #[test]
    fn levels_and_lca() {
        let t = ft();
        assert_eq!(t.levels(), 3); // 4³ = 64 ≥ 32
        assert_eq!(t.lca_level(0, 0), 0);
        assert_eq!(t.lca_level(0, 1), 1);
        assert_eq!(t.lca_level(0, 4), 2);
        assert_eq!(t.lca_level(0, 16), 3);
    }

    #[test]
    fn route_edges_symmetric_length() {
        let t = ft();
        assert_eq!(t.route_edges(0, 1).len(), 2);
        assert_eq!(t.route_edges(0, 5).len(), 4);
        assert_eq!(t.route_edges(3, 28).len(), 6);
    }

    #[test]
    fn siblings_do_not_contend_with_distant_pairs() {
        let t = ft();
        let a = PMsg {
            src: 0,
            dst: 1,
            bytes: 64,
        };
        let b = PMsg {
            src: 8,
            dst: 9,
            bytes: 64,
        };
        let t2 = t.simulate_phase(&[a, b]);
        assert_eq!(t2, t.simulate_phase(&[a]));
    }

    #[test]
    fn shared_upward_edge_serializes() {
        let t = ft();
        // Both messages leave leaf group {0..3} upward from leaf 0.
        let a = PMsg {
            src: 0,
            dst: 16,
            bytes: 64,
        };
        let b = PMsg {
            src: 0,
            dst: 20,
            bytes: 64,
        };
        let both = t.simulate_phase(&[a, b]);
        let one = t.simulate_phase(&[a]);
        assert!(both > one, "same source must serialize on its up-edge");
    }

    #[test]
    fn hw_broadcast_beats_software_emulation() {
        let t = ft();
        let hw = t.hw_broadcast(32, 8);
        // Software emulation: root sends to every leaf one by one.
        let sw: Vec<PMsg> = (1..32)
            .map(|d| PMsg {
                src: 0,
                dst: d,
                bytes: 8,
            })
            .collect();
        let sw_time = t.simulate_phase(&sw);
        assert!(hw * 4 < sw_time, "hw {hw} vs sw {sw_time}");
    }

    #[test]
    fn translation_cheaper_than_random_like_pattern() {
        let t = ft();
        let shift = t.translation(1, 256);
        // A bit-reversal-like pattern crosses the top of the tree a lot.
        let msgs: Vec<PMsg> = (0..32)
            .map(|i| PMsg {
                src: i,
                dst: (i * 13 + 5) % 32,
                bytes: 256,
            })
            .collect();
        let general = t.simulate_phase(&msgs);
        assert!(shift < general, "shift {shift} vs general {general}");
    }

    #[test]
    fn extra_lanes_reduce_contention() {
        let thin = FatTree::new(32, 4, CostModel::cm5());
        let fat = FatTree::with_lanes(32, 4, CostModel::cm5(), &[1, 2, 4]);
        // A root-crossing all-to-one-half pattern that hammers the top.
        let msgs: Vec<PMsg> = (0..16)
            .map(|i| PMsg {
                src: i,
                dst: 16 + i,
                bytes: 512,
            })
            .collect();
        let t_thin = thin.simulate_phase(&msgs);
        let t_fat = fat.simulate_phase(&msgs);
        assert!(t_fat < t_thin, "fat {t_fat} vs thin {t_thin}");
        // And a single message costs the same on both.
        let one = [PMsg {
            src: 0,
            dst: 31,
            bytes: 512,
        }];
        assert_eq!(thin.simulate_phase(&one), fat.simulate_phase(&one));
    }

    #[test]
    fn lane_counts_default_to_one() {
        let t = FatTree::new(32, 4, CostModel::cm5());
        assert!(t.lanes.iter().all(|&l| l == 1));
        assert_eq!(t.lanes.len(), t.levels());
    }

    #[test]
    fn sw_broadcast_is_logarithmic_and_dearer_than_hw() {
        let t = ft();
        let sw = t.sw_broadcast(32, 64);
        let hw = t.hw_broadcast(32, 64);
        assert!(sw > hw, "sw {sw} must cost more than hw {hw}");
        // But far cheaper than the naive one-by-one emulation.
        let naive: Vec<PMsg> = (1..32)
            .map(|d| PMsg {
                src: 0,
                dst: d,
                bytes: 64,
            })
            .collect();
        assert!(sw < t.simulate_phase(&naive));
        // Degenerate participant counts are free.
        assert_eq!(t.sw_broadcast(0, 64), 0);
        assert_eq!(t.sw_broadcast(1, 64), 0);
        assert_eq!(t.sw_reduce(32, 64), sw);
    }

    #[test]
    fn ctrl_outage_selects_software_collectives() {
        let t = ft();
        let healthy = FaultPlan::none();
        let degraded = FaultPlan {
            ctrl_outage: true,
            ..FaultPlan::none()
        };
        assert_eq!(t.broadcast_time(32, 64, &healthy), t.hw_broadcast(32, 64));
        assert_eq!(t.broadcast_time(32, 64, &degraded), t.sw_broadcast(32, 64));
        assert_eq!(t.reduce_time(32, 64, &healthy), t.hw_reduce(32, 64));
        assert_eq!(t.reduce_time(32, 64, &degraded), t.sw_reduce(32, 64));
        // Degradation is measurable: the fallback costs strictly more.
        assert!(t.broadcast_time(32, 64, &degraded) > t.broadcast_time(32, 64, &healthy));
    }

    #[test]
    fn dead_leaves_fold_out_of_collectives() {
        let t = ft();
        let plan = FaultPlan {
            node_deaths: vec![
                crate::NodeDeath { node: 3, t: 1_000 },
                crate::NodeDeath { node: 7, t: 5_000 },
            ],
            ..FaultPlan::none()
        };
        assert_eq!(t.live_participants(32, &plan, 0), 32);
        assert_eq!(
            t.live_participants(32, &plan, 1_000),
            31,
            "death at t strikes at t"
        );
        assert_eq!(t.live_participants(32, &plan, 10_000), 30);
        // Before any death the timed collective equals the plain one…
        assert_eq!(
            t.broadcast_time_at(32, 64, &plan, 0),
            t.broadcast_time(32, 64, &plan)
        );
        // …after the deaths the collective shrinks, so it cannot cost more.
        assert!(t.broadcast_time_at(32, 64, &plan, 10_000) <= t.broadcast_time(32, 64, &plan));
        assert_eq!(t.reduce_time_at(32, 64, &plan, 10_000), t.hw_reduce(30, 64));
    }

    #[test]
    fn table1_ordering_holds() {
        // Reduction ≤ broadcast < translation < general communication —
        // the qualitative content of Table 1.
        let t = ft();
        let bytes = 512;
        let red = t.hw_reduce(32, 8);
        let bc = t.hw_broadcast(32, bytes.min(64));
        let tr = t.translation(1, bytes);
        let msgs: Vec<PMsg> = (0..32)
            .map(|i| PMsg {
                src: i,
                dst: (i * 13 + 5) % 32,
                bytes,
            })
            .collect();
        let gen = t.simulate_phase(&msgs);
        assert!(red <= bc, "red={red} bc={bc}");
        assert!(bc < tr, "bc={bc} tr={tr}");
        assert!(tr < gen, "tr={tr} gen={gen}");
    }
}
