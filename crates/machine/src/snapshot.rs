//! Snapshot/restore for the machine layer's hot artifacts.
//!
//! The mapping service ([`rescomm::serve`]) keeps compiled plans warm in
//! memory and checkpoints them to disk so a `kill -9` loses nothing. The
//! serialized form is the shared strict JSON of `rescomm-json`; this
//! module is the machine half of that contract: [`CachedPhase`] (the
//! flattened route tables the replay engines consume), [`FaultPlan`]
//! (with its retry policy and outage windows), the [`Mesh2D`] +
//! [`CostModel`] pair, and [`CompiledFaultPlan`].
//!
//! Two invariants drive the design:
//!
//! * **Bit-identical restore.** Every `from_json(to_json(x))` rebuilds a
//!   value whose simulated behavior is exactly `x`'s — same makespans
//!   phased and overlapped, same fault outcomes seed for seed. For
//!   [`CachedPhase`] the raw vectors round-trip verbatim; u64s that
//!   exceed `i64::MAX` (saturated sentinels like a disabled control
//!   network's `u64::MAX/4` start-up) are carried as decimal strings so
//!   no value is ever squeezed through an f64. Probabilities round-trip
//!   through Rust's shortest-exact float formatting.
//! * **Compiled state is derived, not stored.** [`CompiledFaultPlan`]'s
//!   interval buckets and fold tables are a deterministic function of
//!   `(plan, mesh)`, so its snapshot is just those two inputs and
//!   restore recompiles — the snapshot format stays stable while the
//!   compiled layout is free to change.
//!
//! Restore errors ([`SnapshotError`]) are structural ("expected field
//! `px`"), not positional — positional errors belong to the JSON parser
//! itself, which reports line/col before this module ever runs.

use crate::fault::{CompiledFaultPlan, FaultPlan, LinkOutage, NodeDeath, NodeOutage, RetryPolicy};
use crate::mesh::Mesh2D;
use crate::model::CostModel;
use crate::phasesim::CachedPhase;
use rescomm_json::JsonValue;

/// Structural restore error: the JSON was well-formed but is not a valid
/// snapshot of the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// What was wrong, with the offending field path.
    pub msg: String,
}

impl SnapshotError {
    fn new(msg: impl Into<String>) -> Self {
        SnapshotError { msg: msg.into() }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot: {}", self.msg)
    }
}

impl std::error::Error for SnapshotError {}

type Restore<T> = Result<T, SnapshotError>;

// --- primitive helpers -----------------------------------------------------

/// A `u64` as JSON: a plain integer when it fits `i64`, otherwise a
/// decimal string (exactness over prettiness for saturated sentinels).
fn u64_json(x: u64) -> JsonValue {
    if x <= i64::MAX as u64 {
        JsonValue::Int(x as i64)
    } else {
        JsonValue::Str(x.to_string())
    }
}

fn u64_restore(v: &JsonValue, what: &str) -> Restore<u64> {
    match v {
        JsonValue::Int(i) if *i >= 0 => Ok(*i as u64),
        JsonValue::Str(s) => s
            .parse::<u64>()
            .map_err(|_| SnapshotError::new(format!("{what}: invalid u64 string {s:?}"))),
        other => Err(SnapshotError::new(format!(
            "{what}: expected unsigned integer, got {other:?}"
        ))),
    }
}

fn field<'a>(v: &'a JsonValue, key: &str, what: &str) -> Restore<&'a JsonValue> {
    v.get(key)
        .ok_or_else(|| SnapshotError::new(format!("{what}: missing field {key:?}")))
}

fn field_u64(v: &JsonValue, key: &str, what: &str) -> Restore<u64> {
    u64_restore(field(v, key, what)?, &format!("{what}.{key}"))
}

fn field_usize(v: &JsonValue, key: &str, what: &str) -> Restore<usize> {
    usize::try_from(field_u64(v, key, what)?)
        .map_err(|_| SnapshotError::new(format!("{what}.{key}: does not fit usize")))
}

fn field_u32(v: &JsonValue, key: &str, what: &str) -> Restore<u32> {
    u32::try_from(field_u64(v, key, what)?)
        .map_err(|_| SnapshotError::new(format!("{what}.{key}: does not fit u32")))
}

fn field_f64(v: &JsonValue, key: &str, what: &str) -> Restore<f64> {
    field(v, key, what)?
        .as_f64()
        .ok_or_else(|| SnapshotError::new(format!("{what}.{key}: expected number")))
}

fn field_bool(v: &JsonValue, key: &str, what: &str) -> Restore<bool> {
    field(v, key, what)?
        .as_bool()
        .ok_or_else(|| SnapshotError::new(format!("{what}.{key}: expected boolean")))
}

fn field_arr<'a>(v: &'a JsonValue, key: &str, what: &str) -> Restore<&'a [JsonValue]> {
    field(v, key, what)?
        .as_array()
        .ok_or_else(|| SnapshotError::new(format!("{what}.{key}: expected array")))
}

fn u64_vec_json(xs: &[u64]) -> JsonValue {
    JsonValue::Array(xs.iter().map(|&x| u64_json(x)).collect())
}

fn u32_vec_json(xs: &[u32]) -> JsonValue {
    JsonValue::Array(xs.iter().map(|&x| JsonValue::Int(i64::from(x))).collect())
}

fn u64_vec_restore(v: &JsonValue, key: &str, what: &str) -> Restore<Vec<u64>> {
    field_arr(v, key, what)?
        .iter()
        .enumerate()
        .map(|(i, e)| u64_restore(e, &format!("{what}.{key}[{i}]")))
        .collect()
}

fn u32_vec_restore(v: &JsonValue, key: &str, what: &str) -> Restore<Vec<u32>> {
    field_arr(v, key, what)?
        .iter()
        .enumerate()
        .map(|(i, e)| {
            u64_restore(e, &format!("{what}.{key}[{i}]")).and_then(|x| {
                u32::try_from(x)
                    .map_err(|_| SnapshotError::new(format!("{what}.{key}[{i}]: does not fit u32")))
            })
        })
        .collect()
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

// --- cost model / mesh -----------------------------------------------------

/// Serialize a [`CostModel`].
pub fn cost_model_to_json(c: &CostModel) -> JsonValue {
    obj(vec![
        ("startup", u64_json(c.startup)),
        ("per_hop", u64_json(c.per_hop)),
        ("per_byte", u64_json(c.per_byte)),
        ("ctrl_startup", u64_json(c.ctrl_startup)),
        ("ctrl_hop", u64_json(c.ctrl_hop)),
        ("ctrl_per_byte", u64_json(c.ctrl_per_byte)),
    ])
}

/// Restore a [`CostModel`].
pub fn cost_model_from_json(v: &JsonValue) -> Restore<CostModel> {
    let w = "cost_model";
    Ok(CostModel {
        startup: field_u64(v, "startup", w)?,
        per_hop: field_u64(v, "per_hop", w)?,
        per_byte: field_u64(v, "per_byte", w)?,
        ctrl_startup: field_u64(v, "ctrl_startup", w)?,
        ctrl_hop: field_u64(v, "ctrl_hop", w)?,
        ctrl_per_byte: field_u64(v, "ctrl_per_byte", w)?,
    })
}

/// Serialize a [`Mesh2D`] (shape + cost model).
pub fn mesh_to_json(m: &Mesh2D) -> JsonValue {
    obj(vec![
        ("px", u64_json(m.px as u64)),
        ("py", u64_json(m.py as u64)),
        ("cost", cost_model_to_json(&m.cost)),
    ])
}

/// Restore a [`Mesh2D`].
pub fn mesh_from_json(v: &JsonValue) -> Restore<Mesh2D> {
    let w = "mesh";
    let px = field_usize(v, "px", w)?;
    let py = field_usize(v, "py", w)?;
    if px == 0 || py == 0 {
        return Err(SnapshotError::new("mesh: px and py must be positive"));
    }
    let cost = cost_model_from_json(field(v, "cost", w)?)?;
    Ok(Mesh2D { px, py, cost })
}

// --- fault plan ------------------------------------------------------------

/// Serialize a [`RetryPolicy`].
pub fn retry_to_json(r: &RetryPolicy) -> JsonValue {
    obj(vec![
        ("enabled", JsonValue::Bool(r.enabled)),
        ("timeout", u64_json(r.timeout)),
        ("backoff", JsonValue::Int(i64::from(r.backoff))),
        ("max_attempts", JsonValue::Int(i64::from(r.max_attempts))),
    ])
}

/// Restore a [`RetryPolicy`].
pub fn retry_from_json(v: &JsonValue) -> Restore<RetryPolicy> {
    let w = "retry";
    Ok(RetryPolicy {
        enabled: field_bool(v, "enabled", w)?,
        timeout: field_u64(v, "timeout", w)?,
        backoff: field_u32(v, "backoff", w)?,
        max_attempts: field_u32(v, "max_attempts", w)?,
    })
}

/// Serialize a [`FaultPlan`] — every field, including the fault-free
/// defaults, so the format never depends on which knobs a plan touches.
pub fn fault_plan_to_json(p: &FaultPlan) -> JsonValue {
    obj(vec![
        ("seed", u64_json(p.seed)),
        ("drop_prob", JsonValue::Float(p.drop_prob)),
        ("dup_prob", JsonValue::Float(p.dup_prob)),
        (
            "link_outages",
            JsonValue::Array(
                p.link_outages
                    .iter()
                    .map(|o| {
                        obj(vec![
                            ("link", u64_json(o.link as u64)),
                            ("from", u64_json(o.from)),
                            ("until", u64_json(o.until)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "node_outages",
            JsonValue::Array(
                p.node_outages
                    .iter()
                    .map(|o| {
                        obj(vec![
                            ("node", u64_json(o.node as u64)),
                            ("from", u64_json(o.from)),
                            ("until", u64_json(o.until)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "node_deaths",
            JsonValue::Array(
                p.node_deaths
                    .iter()
                    .map(|d| {
                        obj(vec![
                            ("node", u64_json(d.node as u64)),
                            ("t", u64_json(d.t)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("detection_latency", u64_json(p.detection_latency)),
        ("ctrl_outage", JsonValue::Bool(p.ctrl_outage)),
        ("retry", retry_to_json(&p.retry)),
    ])
}

/// Restore a [`FaultPlan`].
pub fn fault_plan_from_json(v: &JsonValue) -> Restore<FaultPlan> {
    let w = "fault_plan";
    let link_outages = field_arr(v, "link_outages", w)?
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let w = format!("{w}.link_outages[{i}]");
            Ok(LinkOutage {
                link: field_usize(o, "link", &w)?,
                from: field_u64(o, "from", &w)?,
                until: field_u64(o, "until", &w)?,
            })
        })
        .collect::<Restore<Vec<_>>>()?;
    let node_outages = field_arr(v, "node_outages", w)?
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let w = format!("{w}.node_outages[{i}]");
            Ok(NodeOutage {
                node: field_usize(o, "node", &w)?,
                from: field_u64(o, "from", &w)?,
                until: field_u64(o, "until", &w)?,
            })
        })
        .collect::<Restore<Vec<_>>>()?;
    let node_deaths = field_arr(v, "node_deaths", w)?
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let w = format!("{w}.node_deaths[{i}]");
            Ok(NodeDeath {
                node: field_usize(d, "node", &w)?,
                t: field_u64(d, "t", &w)?,
            })
        })
        .collect::<Restore<Vec<_>>>()?;
    let drop_prob = field_f64(v, "drop_prob", w)?;
    let dup_prob = field_f64(v, "dup_prob", w)?;
    if !(0.0..=1.0).contains(&drop_prob) || !(0.0..=1.0).contains(&dup_prob) {
        return Err(SnapshotError::new(
            "fault_plan: probabilities must lie in [0, 1]",
        ));
    }
    Ok(FaultPlan {
        seed: field_u64(v, "seed", w)?,
        drop_prob,
        dup_prob,
        link_outages,
        node_outages,
        node_deaths,
        detection_latency: field_u64(v, "detection_latency", w)?,
        ctrl_outage: field_bool(v, "ctrl_outage", w)?,
        retry: retry_from_json(field(v, "retry", w)?)?,
    })
}

// --- cached phase ----------------------------------------------------------

/// Serialize a [`CachedPhase`]: the five flat vectors, verbatim.
pub fn cached_phase_to_json(p: &CachedPhase) -> JsonValue {
    obj(vec![
        ("links", u32_vec_json(&p.links)),
        ("offsets", u32_vec_json(&p.offsets)),
        ("bytes", u64_vec_json(&p.bytes)),
        ("src", u32_vec_json(&p.src)),
        ("dst", u32_vec_json(&p.dst)),
    ])
}

/// Restore a [`CachedPhase`], validating the internal consistency the
/// replay engines rely on (monotone offsets bracketing `links`, parallel
/// message arrays of equal length).
pub fn cached_phase_from_json(v: &JsonValue) -> Restore<CachedPhase> {
    let w = "cached_phase";
    let links = u32_vec_restore(v, "links", w)?;
    let offsets = u32_vec_restore(v, "offsets", w)?;
    let bytes = u64_vec_restore(v, "bytes", w)?;
    let src = u32_vec_restore(v, "src", w)?;
    let dst = u32_vec_restore(v, "dst", w)?;
    let n = bytes.len();
    if src.len() != n || dst.len() != n {
        return Err(SnapshotError::new(
            "cached_phase: bytes/src/dst lengths disagree",
        ));
    }
    if offsets.len() != n + 1
        || offsets.first() != Some(&0)
        || offsets.last().copied() != Some(links.len() as u32)
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(SnapshotError::new(
            "cached_phase: offsets must rise monotonically from 0 to links.len()",
        ));
    }
    Ok(CachedPhase {
        links,
        offsets,
        bytes,
        src,
        dst,
    })
}

/// Serialize a phase sequence.
pub fn cached_phases_to_json(ps: &[CachedPhase]) -> JsonValue {
    JsonValue::Array(ps.iter().map(cached_phase_to_json).collect())
}

/// Restore a phase sequence.
pub fn cached_phases_from_json(v: &JsonValue) -> Restore<Vec<CachedPhase>> {
    v.as_array()
        .ok_or_else(|| SnapshotError::new("cached_phases: expected array"))?
        .iter()
        .map(cached_phase_from_json)
        .collect()
}

// --- compiled fault plan ---------------------------------------------------

/// Serialize a [`CompiledFaultPlan`] as its inputs: the source plan and
/// the mesh it was compiled for. The derived tables are not stored —
/// [`CompiledFaultPlan::new`] is deterministic, so restore recompiles and
/// is bit-identical by construction.
pub fn compiled_plan_to_json(c: &CompiledFaultPlan, mesh: &Mesh2D) -> JsonValue {
    obj(vec![
        ("plan", fault_plan_to_json(c.plan())),
        ("mesh", mesh_to_json(mesh)),
    ])
}

/// Restore a [`CompiledFaultPlan`] (and the mesh it belongs to) by
/// recompiling the stored inputs.
pub fn compiled_plan_from_json(v: &JsonValue) -> Restore<(CompiledFaultPlan, Mesh2D)> {
    let w = "compiled_plan";
    let plan = fault_plan_from_json(field(v, "plan", w)?)?;
    let mesh = mesh_from_json(field(v, "mesh", w)?)?;
    Ok((CompiledFaultPlan::new(&plan, &mesh), mesh))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PMsg;
    use crate::phasesim::PhaseSim;
    use rescomm_json::parse;

    fn hostile_plan() -> FaultPlan {
        FaultPlan {
            seed: 0xDEAD_BEEF_CAFE,
            drop_prob: 0.05,
            dup_prob: 0.02,
            link_outages: vec![
                LinkOutage {
                    link: 3,
                    from: 0,
                    until: 100,
                },
                LinkOutage {
                    link: 3,
                    from: 50,
                    until: 200,
                },
            ],
            node_outages: vec![NodeOutage {
                node: 5,
                from: 10,
                until: 90,
            }],
            node_deaths: vec![NodeDeath { node: 7, t: 1_000 }],
            detection_latency: 500,
            ctrl_outage: true,
            retry: RetryPolicy {
                enabled: true,
                timeout: 60_000,
                backoff: 3,
                max_attempts: 9,
            },
        }
    }

    #[test]
    fn fault_plan_round_trips_through_text() {
        for plan in [FaultPlan::none(), hostile_plan()] {
            let text = fault_plan_to_json(&plan).render();
            let back = fault_plan_from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn mesh_and_saturated_cost_model_round_trip() {
        // Paragon's disabled control network is `u64::MAX/4` — past
        // i64::MAX? No, but force the true worst case explicitly.
        let mut cost = CostModel::paragon();
        cost.ctrl_startup = u64::MAX;
        let m = Mesh2D::new(8, 4, cost);
        let text = mesh_to_json(&m).render();
        let back = mesh_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.px, 8);
        assert_eq!(back.py, 4);
        assert_eq!(back.cost, m.cost);
        // The saturated value traveled as a string, not a float.
        assert!(text.contains(&format!("\"{}\"", u64::MAX)));
    }

    #[test]
    fn cached_phase_round_trips_verbatim_and_replays_identically() {
        let m = Mesh2D::new(8, 4, CostModel::paragon());
        let msgs: Vec<PMsg> = (0..m.nodes())
            .map(|n| PMsg {
                src: n,
                dst: (n * 7 + 3) % m.nodes(),
                bytes: 64 + (n as u64) * 13,
            })
            .collect();
        let phase = CachedPhase::new(&m, &msgs);
        let text = cached_phase_to_json(&phase).render();
        let back = cached_phase_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.links, phase.links);
        assert_eq!(back.offsets, phase.offsets);
        assert_eq!(back.bytes, phase.bytes);
        assert_eq!(back.src, phase.src);
        assert_eq!(back.dst, phase.dst);
        let mut sim = PhaseSim::new(m);
        assert_eq!(sim.run_cached(&back), sim.run_cached(&phase));
    }

    #[test]
    fn cached_phase_restore_validates_structure() {
        let m = Mesh2D::new(4, 4, CostModel::paragon());
        let phase = CachedPhase::new(
            &m,
            &[PMsg {
                src: 0,
                dst: 5,
                bytes: 8,
            }],
        );
        let good = cached_phase_to_json(&phase).render();
        // Drop a parallel array → length mismatch.
        let broken = good.replace("\"src\": [0]", "\"src\": [0, 1]");
        let e = cached_phase_from_json(&parse(&broken).unwrap()).unwrap_err();
        assert!(e.msg.contains("lengths disagree"), "{e}");
        // Corrupt the offsets bracket.
        let broken = good.replace("\"offsets\": [0, ", "\"offsets\": [1, ");
        let e = cached_phase_from_json(&parse(&broken).unwrap()).unwrap_err();
        assert!(e.msg.contains("offsets"), "{e}");
        // Missing field.
        let e = cached_phase_from_json(&parse("{\"links\": []}").unwrap()).unwrap_err();
        assert!(e.msg.contains("missing field"), "{e}");
    }

    #[test]
    fn compiled_plan_restores_bit_identical_queries() {
        let m = Mesh2D::new(8, 4, CostModel::paragon());
        let plan = hostile_plan();
        let c = CompiledFaultPlan::new(&plan, &m);
        let text = compiled_plan_to_json(&c, &m).render();
        let (back, back_mesh) = compiled_plan_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back_mesh.px, m.px);
        assert_eq!(back.plan(), &plan);
        for t in [0u64, 49, 60, 100, 199, 999, 1_000, 5_000] {
            assert_eq!(back.link_outage_until(3, t), c.link_outage_until(3, t));
            for node in [5usize, 6, 7] {
                assert_eq!(back.node_alive_after(node, t), c.node_alive_after(node, t));
                assert_eq!(back.node_dead_at(node, t), c.node_dead_at(node, t));
            }
        }
    }

    #[test]
    fn fault_plan_restore_rejects_bad_probability() {
        let mut bad = fault_plan_to_json(&FaultPlan::none()).render();
        bad = bad.replace("\"drop_prob\": 0.0", "\"drop_prob\": 1.5");
        let e = fault_plan_from_json(&parse(&bad).unwrap()).unwrap_err();
        assert!(e.msg.contains("probabilities"), "{e}");
    }
}
