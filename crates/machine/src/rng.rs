//! A deterministic, in-workspace PRNG for fault injection.
//!
//! The fault simulator must be reproducible run-to-run and offline (no
//! `rand` crate in the build image), so drops and duplications are drawn
//! from this xorshift64* generator seeded explicitly by the
//! [`crate::FaultPlan`]. The same seed always yields the same fault
//! sequence, which is what makes `faultsweep` curves and the CI smoke
//! step deterministic.

/// xorshift64* — tiny, fast, and good enough for fault sampling.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. The raw seed is scrambled through one
    /// splitmix64 step so that small consecutive seeds (0, 1, 2, …) do
    /// not produce correlated early outputs; a zero state is remapped
    /// (xorshift has a fixed point at 0).
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        XorShift64 {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`. `p <= 0` is a
    /// guaranteed `false` and `p >= 1` a guaranteed `true`; both still
    /// consume one draw so fault sequences stay aligned across sweeps
    /// that vary only the probability.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        let u = self.next_f64();
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            u < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = XorShift64::new(43);
        assert_ne!(xs[0], c.next_u64(), "different seeds must diverge");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = XorShift64::new(9);
        for _ in 0..64 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
        // A fair-ish coin lands on both sides over 1000 draws.
        let heads = (0..1000).filter(|_| r.chance(0.5)).count();
        assert!((200..800).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = XorShift64::new(11);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
