//! The shared linear communication cost model.
//!
//! Both simulated machines price a point-to-point message as
//! `startup + hops·per_hop + bytes·per_byte` (the classic postal/wormhole
//! model); the CM-5's control network adds a cheap collective primitive
//! priced as `ctrl_startup + log₂(P)·ctrl_hop + bytes·ctrl_per_byte`.

/// A physical point-to-point message between flattened node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PMsg {
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
}

/// Linear communication costs, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Per-message software start-up.
    pub startup: u64,
    /// Per-hop (router traversal) latency.
    pub per_hop: u64,
    /// Per-byte transfer time on a data-network link.
    pub per_byte: u64,
    /// Control-network collective start-up (CM-5 style). Machines without
    /// a control network set this to `u64::MAX/4` to disable it.
    pub ctrl_startup: u64,
    /// Control-network per-stage latency.
    pub ctrl_hop: u64,
    /// Control-network per-byte cost (collectives are pipelined, so this
    /// is typically the same order as `per_byte`).
    pub ctrl_per_byte: u64,
}

impl CostModel {
    /// Paragon-flavoured defaults: expensive start-up, no control network.
    pub fn paragon() -> Self {
        CostModel {
            startup: 40_000, // ≈ 40 µs software latency
            per_hop: 40,
            per_byte: 6, // ≈ 175 MB/s
            ctrl_startup: u64::MAX / 4,
            ctrl_hop: 0,
            ctrl_per_byte: 0,
        }
    }

    /// CM-5-flavoured defaults: data network plus fast control network.
    pub fn cm5() -> Self {
        CostModel {
            startup: 86_000, // CMMD-era software start-up
            per_hop: 200,
            per_byte: 100, // ≈ 10 MB/s per data-network link
            ctrl_startup: 4_000,
            ctrl_hop: 125,
            ctrl_per_byte: 120,
        }
    }

    /// Duration of one point-to-point transfer over `hops` links.
    pub fn p2p(&self, hops: usize, bytes: u64) -> u64 {
        self.startup + self.per_hop * hops as u64 + self.per_byte * bytes
    }

    /// Duration of a control-network collective over `p` participants.
    pub fn ctrl_collective(&self, p: usize, bytes: u64) -> u64 {
        let stages = (usize::BITS - p.max(1).leading_zeros()) as u64;
        self.ctrl_startup + self.ctrl_hop * stages + self.ctrl_per_byte * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_is_affine_in_bytes_and_hops() {
        let c = CostModel::paragon();
        let base = c.p2p(1, 0);
        assert_eq!(c.p2p(1, 100) - base, 100 * c.per_byte);
        assert_eq!(c.p2p(3, 0) - base, 2 * c.per_hop);
    }

    #[test]
    fn ctrl_collective_scales_logarithmically() {
        let c = CostModel::cm5();
        let t32 = c.ctrl_collective(32, 8);
        let t64 = c.ctrl_collective(64, 8);
        assert_eq!(t64 - t32, c.ctrl_hop);
    }

    #[test]
    fn cm5_collective_cheaper_than_many_p2p() {
        let c = CostModel::cm5();
        // One hardware broadcast vs 31 sequential sends.
        let hw = c.ctrl_collective(32, 8);
        let sw = 31 * c.p2p(5, 8);
        assert!(hw * 5 < sw, "hw={hw} sw={sw}");
    }
}
