//! The shared work-stealing execution substrate every `par_*` fan-out
//! rides on.
//!
//! The old driver split a sweep's configs into `threads` static chunks
//! and spawned one scoped thread per chunk. That collapses the moment
//! task costs are skewed (one long chunk serializes the whole sweep) and
//! pays a spawn/join per call. This module replaces it with a
//! process-wide pool:
//!
//! * **Injector.** Sweeps are published to a global job queue; parked
//!   pool workers (spawned lazily, reused for the life of the process)
//!   pick jobs up from it, and the submitting thread always participates
//!   in its own job, so progress never depends on pool threads being
//!   free.
//! * **Per-worker deques.** A sweep's task indices `0..n` are pre-split
//!   into one contiguous range per worker, each held in a [`RangeDeque`]
//!   — a single packed `(start, end)` word updated by CAS. The owner
//!   claims `grain` tasks at a time from the front; a worker whose range
//!   is dry steals the **back half** of a victim's remaining range and
//!   installs the surplus in its own deque, so steal traffic is
//!   O(workers · log(n/grain)) per sweep rather than per task. This is a
//!   Chase–Lev deque specialized to index ranges: because tasks are
//!   slice indices, the deque is one atomic word — no buffers, no ABA
//!   (a packed `(start, end)` value always denotes the same pending
//!   tasks, and claimed tasks are never re-queued).
//! * **Per-worker engines.** Each worker materializes its scratch state
//!   (`FaultSim`, `PhaseSim`, `AnalysisCache`, …) lazily via `init` and
//!   reuses it across every task it claims or steals — zero cross-thread
//!   allocation in the hot loop.
//! * **Determinism.** Task `i`'s result is written into pre-sized slot
//!   `i`; every result must be (and, by the repo's sweep invariants, is)
//!   a pure function of its config, so output order and every statistic
//!   are bit-identical regardless of worker count or steal interleaving.
//!   The property tests drive this at random worker counts and random
//!   task-cost skew.
//!
//! A panicking task poisons the job: the first payload is captured and
//! re-raised on the submitting thread after the job drains, matching the
//! old scoped-thread behaviour; the pool itself survives.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Hard cap on pool threads: a sweep may request more workers than this
/// (they are virtualized over the pool), but the process never holds
/// more parked threads.
const MAX_POOL_THREADS: usize = 64;

/// How one sweep actually executed — the effective worker count (after
/// clamping to the task count), the grain, and the steal traffic. The
/// bench harnesses compute parallel efficiency against
/// [`SweepReport::workers`], never against the requested count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepReport {
    /// Worker count the caller asked for.
    pub requested: usize,
    /// Workers the sweep actually used: `requested` clamped to `[1, tasks]`.
    pub workers: usize,
    /// Total work units in the sweep.
    pub tasks: usize,
    /// Tasks claimed per deque operation (the coarseness knob).
    pub grain: usize,
    /// Successful steal operations across the sweep.
    pub steals: u64,
}

/// Pick a grain so each worker sees ~8 claim operations on its own range
/// before any stealing starts: coarse enough to amortize the CAS per
/// block, fine enough that the back half of a lagging worker's range is
/// still worth stealing. Calibrated in `BENCH_scaling.json`.
pub fn auto_grain(tasks: usize, workers: usize) -> usize {
    (tasks / (workers.max(1) * 8)).max(1)
}

/// One worker's share of the task indices: `(start, end)` packed into a
/// single atomic word. Empty when `start >= end`.
struct RangeDeque {
    bounds: AtomicU64,
}

fn pack(start: usize, end: usize) -> u64 {
    ((start as u64) << 32) | end as u64
}

fn unpack(word: u64) -> (usize, usize) {
    ((word >> 32) as usize, (word & 0xffff_ffff) as usize)
}

impl RangeDeque {
    fn new(start: usize, end: usize) -> Self {
        RangeDeque {
            bounds: AtomicU64::new(pack(start, end)),
        }
    }

    /// Claim up to `grain` tasks from the front (owner's fast path; also
    /// used by a thief draining its own freshly installed range).
    fn take_front(&self, grain: usize) -> Option<(usize, usize)> {
        let mut cur = self.bounds.load(Ordering::Acquire);
        loop {
            let (s, e) = unpack(cur);
            if s >= e {
                return None;
            }
            let take = grain.min(e - s);
            match self.bounds.compare_exchange_weak(
                cur,
                pack(s + take, e),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((s, s + take)),
                Err(now) => cur = now,
            }
        }
    }

    /// Steal the back half (rounded up) of the remaining range.
    fn steal_back(&self) -> Option<(usize, usize)> {
        let mut cur = self.bounds.load(Ordering::Acquire);
        loop {
            let (s, e) = unpack(cur);
            if s >= e {
                return None;
            }
            let keep = (e - s) / 2;
            match self.bounds.compare_exchange_weak(
                cur,
                pack(s, s + keep),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((s + keep, e)),
                Err(now) => cur = now,
            }
        }
    }

    /// Install a stolen range into this (empty, owner-local) deque so
    /// other thieves can share it. Only the owning worker stores; thieves
    /// only CAS-remove, so a plain store is race-free against them.
    fn install(&self, start: usize, end: usize) {
        self.bounds.store(pack(start, end), Ordering::Release);
    }
}

/// Type-erased bookkeeping of one in-flight sweep. Lives on the
/// submitting thread's stack; pool workers reach it through a raw
/// pointer that is guaranteed valid until the submitter has observed
/// `inside == 0` **after** unlisting the job from the injector.
struct JobCore {
    data: *const (),
    /// Monomorphized participation entry point: `(data, worker_slot)`.
    run: unsafe fn(*const (), usize),
    workers: usize,
    state: Mutex<JobState>,
    /// Signalled when a participant leaves (`inside` drops).
    done: Condvar,
}

struct JobState {
    /// Next worker slot to hand out; slots `>= workers` mean the job is
    /// fully subscribed.
    next_slot: usize,
    /// Participants currently inside `run` (including the submitter).
    inside: usize,
    /// First panic payload raised by any participant.
    panic: Option<Box<dyn Any + Send>>,
}

/// A `*const JobCore` that may cross threads: validity is enforced by
/// the unlist-then-drain protocol, not by the type system.
#[derive(Clone, Copy)]
struct JobPtr(*const JobCore);
unsafe impl Send for JobPtr {}

struct PoolShared {
    /// The injector: jobs currently open for pool workers to join.
    injector: Mutex<Vec<JobPtr>>,
    /// Signalled when a job is published.
    wake: Condvar,
    /// Pool threads spawned so far.
    spawned: AtomicUsize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn pool() -> &'static PoolShared {
    static POOL: OnceLock<PoolShared> = OnceLock::new();
    POOL.get_or_init(|| PoolShared {
        injector: Mutex::new(Vec::new()),
        wake: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Make sure at least `want` pool threads exist (capped). Workers are
/// detached and live for the process; an idle worker parks on the
/// injector condvar and costs nothing.
fn ensure_threads(want: usize) {
    let shared = pool();
    let want = want.min(MAX_POOL_THREADS);
    loop {
        let cur = shared.spawned.load(Ordering::Acquire);
        if cur >= want {
            break;
        }
        if shared
            .spawned
            .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue;
        }
        std::thread::Builder::new()
            .name(format!("rescomm-pool-{cur}"))
            .spawn(worker_loop)
            .expect("spawning a pool worker");
    }
}

/// A parked pool thread's life: wait for a job with a free worker slot,
/// join it, participate until its deques drain, repeat.
fn worker_loop() {
    let shared = pool();
    loop {
        // Find a joinable job. Slot assignment happens under the
        // injector lock — the same lock a submitter unlists under — so a
        // job can never gain participants after it is unlisted.
        let (job, slot) = {
            let mut q = lock(&shared.injector);
            'find: loop {
                for &JobPtr(ptr) in q.iter() {
                    let core = unsafe { &*ptr };
                    let mut st = lock(&core.state);
                    if st.next_slot < core.workers {
                        let slot = st.next_slot;
                        st.next_slot += 1;
                        st.inside += 1;
                        break 'find (JobPtr(ptr), slot);
                    }
                }
                q = shared.wake.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let core = unsafe { &*job.0 };
        let run = core.run;
        let data = core.data;
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { run(data, slot) }));
        let mut st = lock(&core.state);
        if let Err(payload) = outcome {
            st.panic.get_or_insert(payload);
        }
        st.inside -= 1;
        // Notify while holding the lock: after we release it we must not
        // touch `core` again (the submitter may free it immediately).
        core.done.notify_all();
        drop(st);
    }
}

/// The monomorphic half of a job: everything the worker algorithm needs,
/// shared by reference across participants.
struct JobData<'a, C, R, S, I, F> {
    configs: &'a [C],
    /// Pre-sized output; slot `i` is written exactly once, by whichever
    /// worker claims task `i`.
    results: *mut R,
    deques: Vec<RangeDeque>,
    grain: usize,
    steals: AtomicU64,
    init: &'a I,
    f: &'a F,
    _marker: std::marker::PhantomData<S>,
}

/// `results` is a raw pointer only to erase the unique-borrow; every
/// task index is claimed by exactly one worker, so writes never alias.
unsafe impl<C: Sync, R: Send, S, I: Sync, F: Sync> Sync for JobData<'_, C, R, S, I, F> {}

impl<C, R, S, I, F> JobData<'_, C, R, S, I, F>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &C) -> R + Sync,
{
    /// One worker's participation: drain the own deque, then steal until
    /// a full victim scan comes up empty. The scratch state is built on
    /// first use and reused across owned *and* stolen tasks.
    fn participate(&self, slot: usize) {
        let workers = self.deques.len();
        let mut state: Option<S> = None;
        loop {
            if let Some((a, b)) = self.deques[slot].take_front(self.grain) {
                self.run_block(&mut state, a, b);
                continue;
            }
            // Own range dry: scan for a victim, nearest neighbour first.
            let mut stolen = None;
            for off in 1..workers {
                if let Some(r) = self.deques[(slot + off) % workers].steal_back() {
                    stolen = Some(r);
                    break;
                }
            }
            let Some((s, e)) = stolen else {
                return; // every deque empty: the sweep is fully claimed
            };
            self.steals.fetch_add(1, Ordering::Relaxed);
            let take = self.grain.min(e - s);
            // Expose the surplus *before* running so other idle workers
            // can share the stolen range immediately.
            if s + take < e {
                self.deques[slot].install(s + take, e);
            }
            self.run_block(&mut state, s, s + take);
        }
    }

    fn run_block(&self, state: &mut Option<S>, a: usize, b: usize) {
        let state = state.get_or_insert_with(self.init);
        for i in a..b {
            let r = (self.f)(state, &self.configs[i]);
            // Assignment (not `write`) so the pre-sized `Default` slot is
            // dropped, never leaked. Slot `i` is claimed by exactly one
            // worker, so the `&mut` never aliases.
            unsafe { *self.results.add(i) = r };
        }
    }
}

unsafe fn run_erased<C, R, S, I, F>(data: *const (), slot: usize)
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &C) -> R + Sync,
{
    let job = &*data.cast::<JobData<'_, C, R, S, I, F>>();
    job.participate(slot);
}

/// Run `f` over every config on the shared pool with `requested`
/// workers (clamped to `[1, n]`) and the given `grain` (`0` =
/// [`auto_grain`]). Results are in input order, bit-identical for every
/// worker count; the report says how the sweep actually executed.
///
/// A panic inside `f` or `init` is re-raised here after the job drains.
pub fn sweep<C, R, S, I, F>(
    configs: &[C],
    requested: usize,
    grain: usize,
    init: I,
    f: F,
) -> (Vec<R>, SweepReport)
where
    C: Sync,
    R: Send + Default + Clone,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &C) -> R + Sync,
{
    let n = configs.len();
    let mut report = SweepReport {
        requested,
        workers: requested.clamp(1, n.max(1)),
        tasks: n,
        grain: 0,
        steals: 0,
    };
    if n == 0 {
        return (Vec::new(), report);
    }
    let grain = if grain == 0 {
        auto_grain(n, report.workers)
    } else {
        grain
    };
    report.grain = grain;
    if report.workers <= 1 {
        // Single worker: run inline. Involving the pool buys nothing and
        // costs a publish + park/unpark round trip per sweep, which is
        // pure overhead on single-core hosts.
        let mut state = init();
        return (configs.iter().map(|c| f(&mut state, c)).collect(), report);
    }

    let workers = report.workers;
    let mut results = vec![R::default(); n];
    let chunk = n.div_ceil(workers);
    let deques: Vec<RangeDeque> = (0..workers)
        .map(|w| RangeDeque::new((w * chunk).min(n), ((w + 1) * chunk).min(n)))
        .collect();
    let job = JobData::<'_, C, R, S, I, F> {
        configs,
        results: results.as_mut_ptr(),
        deques,
        grain,
        steals: AtomicU64::new(0),
        init: &init,
        f: &f,
        _marker: std::marker::PhantomData,
    };
    let core = JobCore {
        data: (&raw const job).cast(),
        run: run_erased::<C, R, S, I, F>,
        workers,
        state: Mutex::new(JobState {
            next_slot: 1, // the submitter is slot 0
            inside: 1,
            panic: None,
        }),
        done: Condvar::new(),
    };

    let shared = pool();
    ensure_threads(workers - 1);
    {
        let mut q = lock(&shared.injector);
        q.push(JobPtr(&raw const core));
        shared.wake.notify_all();
    }

    // Participate as slot 0: the job completes even if every pool thread
    // is busy elsewhere.
    let outcome = catch_unwind(AssertUnwindSafe(|| job.participate(0)));

    // Unlist first (under the injector lock, so no new participant can
    // join), then drain the ones already inside.
    {
        let mut q = lock(&shared.injector);
        q.retain(|p| !std::ptr::eq(p.0, &raw const core));
    }
    let mut st = lock(&core.state);
    if let Err(payload) = outcome {
        st.panic.get_or_insert(payload);
    }
    st.inside -= 1;
    while st.inside > 0 {
        st = core.done.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    let panic = st.panic.take();
    drop(st);

    report.steals = job.steals.load(Ordering::Relaxed);
    drop(job);
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn deque_take_and_steal_partition_exactly() {
        let d = RangeDeque::new(0, 100);
        let mut seen = [false; 100];
        let (a, b) = d.take_front(8).unwrap();
        assert_eq!((a, b), (0, 8));
        seen[a..b].iter_mut().for_each(|s| *s = true);
        let (s, e) = d.steal_back().unwrap();
        assert_eq!((s, e), (54, 100), "back half of 8..100");
        seen[s..e].iter_mut().for_each(|x| *x = true);
        // Drain the rest from the front.
        while let Some((a, b)) = d.take_front(7) {
            for (i, slot) in seen.iter_mut().enumerate().take(b).skip(a) {
                assert!(!*slot, "task {i} claimed twice");
                *slot = true;
            }
        }
        assert!(d.steal_back().is_none());
        assert!(seen[..54].iter().all(|&s| s), "front segment fully claimed");
    }

    #[test]
    fn auto_grain_is_sane() {
        assert_eq!(auto_grain(0, 4), 1);
        assert_eq!(auto_grain(7, 4), 1);
        assert_eq!(auto_grain(256, 4), 8);
        assert_eq!(auto_grain(1000, 1), 125);
    }

    #[test]
    fn sweep_preserves_order_and_reports_effective_workers() {
        let configs: Vec<u64> = (0..1000).collect();
        let (got, rep) = sweep(&configs, 6, 0, || (), |(), &c| c * 3 + 1);
        assert_eq!(got, configs.iter().map(|c| c * 3 + 1).collect::<Vec<_>>());
        assert_eq!((rep.requested, rep.workers, rep.tasks), (6, 6, 1000));
        assert_eq!(rep.grain, auto_grain(1000, 6));

        // More workers than tasks: clamped, surfaced.
        let (_, rep) = sweep(&configs[..3], 64, 0, || (), |(), &c| c);
        assert_eq!((rep.requested, rep.workers), (64, 3));

        // Empty input.
        let (got, rep) = sweep(&Vec::<u64>::new(), 4, 0, || (), |(), &c: &u64| c);
        assert!(got.is_empty());
        assert_eq!(rep.tasks, 0);
    }

    #[test]
    fn skewed_tasks_are_bit_identical_across_worker_counts_and_grains() {
        // Task i busy-works proportionally to a skewed cost so stealing
        // actually happens, then returns a pure function of i.
        let configs: Vec<usize> = (0..300).collect();
        let run = |workers: usize, grain: usize| {
            sweep(
                &configs,
                workers,
                grain,
                || 0u64,
                |acc, &i| {
                    let cost = if i % 37 == 0 { 20_000 } else { 50 };
                    let mut h = i as u64 ^ 0x9e37;
                    for _ in 0..cost {
                        h = h.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    *acc = acc.wrapping_add(h); // per-worker state mutates freely
                    (i as u64).wrapping_mul(h ^ (h >> 31))
                },
            )
            .0
        };
        let serial = run(1, 1);
        for (workers, grain) in [(2, 1), (3, 0), (8, 4), (16, 2)] {
            assert_eq!(
                serial,
                run(workers, grain),
                "workers={workers} grain={grain}"
            );
        }
    }

    #[test]
    fn per_worker_state_is_reused_not_rebuilt() {
        let inits = AtomicUsize::new(0);
        let configs: Vec<usize> = (0..500).collect();
        let (_, rep) = sweep(
            &configs,
            4,
            4,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, &i| i,
        );
        assert!(rep.workers == 4);
        assert!(
            inits.load(Ordering::Relaxed) <= 4,
            "each worker builds its scratch at most once"
        );
    }

    #[test]
    fn panics_propagate_and_the_pool_survives() {
        let configs: Vec<usize> = (0..64).collect();
        let boom = catch_unwind(AssertUnwindSafe(|| {
            sweep(
                &configs,
                4,
                1,
                || (),
                |(), &i| {
                    assert!(i != 13, "boom at {i}");
                    i
                },
            )
        }));
        assert!(boom.is_err(), "the task panic must reach the submitter");
        // The pool still executes subsequent sweeps correctly.
        let (got, _) = sweep(&configs, 4, 1, || (), |(), &i| i * 2);
        assert_eq!(got, configs.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_sweeps_do_not_interfere() {
        // Several submitters share the pool at once; every sweep's output
        // must stay bit-identical to its serial run.
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    let configs: Vec<u64> = (0..400).map(|i| i + 1000 * t).collect();
                    let want: Vec<u64> = configs.iter().map(|c| c ^ (c << 7)).collect();
                    for _ in 0..5 {
                        let (got, _) = sweep(&configs, 4, 0, || (), |(), &c| c ^ (c << 7));
                        assert_eq!(got, want);
                    }
                });
            }
        });
    }
}
