//! Fault injection: the failure model the resilient schedulers simulate.
//!
//! The paper's numbers come from real CM-5 / Paragon runs, where links
//! stall, messages get lost on the wire, and the CM-5's control network
//! can be unavailable to a partition. A [`FaultPlan`] describes such an
//! adversarial environment deterministically:
//!
//! * **link outages** — absolute-time windows during which a directed
//!   mesh link is dead (the router around it must be avoided or waited
//!   out);
//! * **node outages** — windows during which a node can neither send nor
//!   receive (messages defer to the end of the window);
//! * **message drop / duplication probabilities** — sampled from the
//!   in-workspace [`crate::rng::XorShift64`] seeded by the plan, so every
//!   run of the same plan observes the same fault sequence;
//! * **control-network outage** — the CM-5 degraded mode in which
//!   hardware collectives are unavailable and [`crate::FatTree`] falls
//!   back to software binomial trees over the data network;
//! * **permanent node deaths** — a [`NodeDeath`] kills a node for good at
//!   an absolute time; a failure detector with configurable
//!   [`FaultPlan::detection_latency`] notices the death and triggers the
//!   checkpoint/rollback recovery path
//!   ([`crate::PhaseSim::simulate_phases_recovering`]);
//! * a **retry policy** — timeout plus exponential backoff, with a hard
//!   attempt cap after which the transport escalates to a reliable
//!   channel (the attempt is forced through), so delivery is guaranteed
//!   whenever retries are enabled, whatever the drop probability.
//!
//! [`crate::PhaseSim::simulate_phase_faulty`] consumes the plan and
//! returns a [`FaultReport`] with full makespan accounting, so the cost
//! of degradation is measurable (see the `faultsweep` and `recoverysweep`
//! bench bins). Recovery outcomes (rollbacks, replayed phases, lost work)
//! land in the embedded [`RecoveryReport`].

use crate::mesh::Mesh2D;

/// A window `[from, until)` of simulated time during which a directed
/// link is dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// Dense link index (see [`crate::mesh::LinkId::index`]).
    pub link: usize,
    /// Start of the outage (inclusive), in ns.
    pub from: u64,
    /// End of the outage (exclusive), in ns.
    pub until: u64,
}

/// A window `[from, until)` during which a node can neither send nor
/// receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOutage {
    /// Flattened node id.
    pub node: usize,
    /// Start of the outage (inclusive), in ns.
    pub from: u64,
    /// End of the outage (exclusive), in ns.
    pub until: u64,
}

/// A permanent node failure: from time `t` on, the node never sends or
/// receives again. Unlike a [`NodeOutage`] window, a death is only
/// survivable by rolling back to a checkpoint and folding the dead
/// node's work onto survivors
/// ([`crate::PhaseSim::simulate_phases_recovering`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDeath {
    /// Flattened node id.
    pub node: usize,
    /// Time of death (inclusive), in ns.
    pub t: u64,
}

/// Retransmission policy: timeout, exponential backoff, and a hard
/// attempt cap that guarantees progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Whether lost messages are retransmitted at all. With retries off,
    /// a dropped message is lost for good (delivered fraction < 1).
    pub enabled: bool,
    /// Base retransmission timeout added after a lost attempt, in ns.
    pub timeout: u64,
    /// Backoff multiplier applied per failed attempt (`timeout`,
    /// `timeout·b`, `timeout·b²`, …).
    pub backoff: u32,
    /// Hard cap on attempts per message. The final attempt is escalated
    /// to a reliable channel and always succeeds, so the delivery
    /// guarantee holds even at drop probability 1. Clamped to ≥ 1.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            enabled: true,
            timeout: 50_000, // ≈ one Paragon message start-up
            backoff: 2,
            max_attempts: 16,
        }
    }
}

impl RetryPolicy {
    /// No retransmission: one attempt, losses are final.
    pub fn disabled() -> Self {
        RetryPolicy {
            enabled: false,
            ..RetryPolicy::default()
        }
    }

    /// Delay inserted before attempt `attempt + 1` after `attempt`
    /// failed attempts (1-based), saturating.
    pub fn backoff_delay(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        self.timeout
            .saturating_mul((self.backoff.max(1) as u64).saturating_pow(exp))
    }
}

/// A deterministic fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed: the same plan always observes the same fault sequence.
    pub seed: u64,
    /// Probability that one transmission attempt is lost on the wire
    /// (the attempt still occupies its links — bandwidth is wasted).
    pub drop_prob: f64,
    /// Probability that a delivered message is retransmitted once more
    /// (a lost acknowledgement); the receiver deduplicates, so this
    /// wastes bandwidth without double-delivering.
    pub dup_prob: f64,
    /// Dead-link windows.
    pub link_outages: Vec<LinkOutage>,
    /// Dead-node windows.
    pub node_outages: Vec<NodeOutage>,
    /// Permanent node deaths (recoverable only via checkpoint/rollback).
    pub node_deaths: Vec<NodeDeath>,
    /// Failure-detector latency in ns: a death at `t` is *detected* at
    /// `t + detection_latency`; until then the scheduler keeps sending
    /// into the dead node and that work is lost on rollback.
    pub detection_latency: u64,
    /// CM-5 degraded mode: the control network is unavailable and
    /// hardware collectives fall back to software binomial trees.
    pub ctrl_outage: bool,
    /// Retransmission policy.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The fault-free plan: bit-identical schedules to the unfaulted
    /// simulator.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            link_outages: Vec::new(),
            node_outages: Vec::new(),
            node_deaths: Vec::new(),
            detection_latency: 0,
            ctrl_outage: false,
            retry: RetryPolicy::default(),
        }
    }

    /// A plan that only drops messages, with the default retry policy.
    pub fn with_drop(seed: u64, drop_prob: f64) -> Self {
        FaultPlan {
            seed,
            drop_prob,
            ..FaultPlan::none()
        }
    }

    /// `true` when the plan cannot perturb a schedule at all.
    pub fn is_zero_fault(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.link_outages.is_empty()
            && self.node_outages.is_empty()
            && self.node_deaths.is_empty()
    }

    /// Is `link` dead at time `t`?
    #[inline]
    pub fn link_dead_at(&self, link: usize, t: u64) -> bool {
        self.link_outages
            .iter()
            .any(|o| o.link == link && o.from <= t && t < o.until)
    }

    /// If `link` is inside an outage window at time `t`, the earliest
    /// `until` among the active windows (the next time worth re-checking).
    pub fn link_outage_until(&self, link: usize, t: u64) -> Option<u64> {
        self.link_outages
            .iter()
            .filter(|o| o.link == link && o.from <= t && t < o.until)
            .map(|o| o.until)
            .min()
    }

    /// Is `node` dead at time `t` — inside an outage window *or* past a
    /// permanent death?
    #[inline]
    pub fn node_dead_at(&self, node: usize, t: u64) -> bool {
        self.node_outages
            .iter()
            .any(|o| o.node == node && o.from <= t && t < o.until)
            || self.node_deaths.iter().any(|d| d.node == node && t >= d.t)
    }

    /// Earliest time ≥ `t` at which `node` is alive (nested / overlapping
    /// windows are chased to a fixed point). A node past a permanent
    /// death never comes back: the result is `u64::MAX`, consistent with
    /// [`FaultPlan::node_dead_at`] returning `true` forever.
    pub fn node_alive_after(&self, node: usize, mut t: u64) -> u64 {
        loop {
            if self.node_deaths.iter().any(|d| d.node == node && t >= d.t) {
                return u64::MAX;
            }
            let Some(o) = self
                .node_outages
                .iter()
                .find(|o| o.node == node && o.from <= t && t < o.until)
            else {
                return t;
            };
            t = o.until;
        }
    }

    /// Time of `node`'s permanent death, if the plan kills it (earliest,
    /// should the plan list several).
    pub fn death_time(&self, node: usize) -> Option<u64> {
        self.node_deaths
            .iter()
            .filter(|d| d.node == node)
            .map(|d| d.t)
            .min()
    }

    /// Time at which the failure detector notices a death at `t`
    /// (saturating).
    #[inline]
    pub fn detection_time(&self, t: u64) -> u64 {
        t.saturating_add(self.detection_latency)
    }
}

/// Deterministic fold target for a dead node on a `px × py` mesh: the
/// live node (not in `dead`) nearest in Manhattan distance, ties broken
/// by the smaller node id. This is the rule both the simulator's message
/// folding and the core remapper's degraded-grid placement share, so the
/// two sides agree on where a dead node's work lands. Returns `None`
/// only when every node is dead.
pub fn fold_target(px: usize, py: usize, node: usize, dead: &[usize]) -> Option<usize> {
    let (nx, ny) = ((node % px) as i64, (node / px) as i64);
    let mut best: Option<(i64, usize)> = None;
    for id in 0..px * py {
        if dead.contains(&id) {
            continue;
        }
        let (x, y) = ((id % px) as i64, (id / px) as i64);
        let d = (x - nx).abs() + (y - ny).abs();
        if best.is_none_or(|(bd, bid)| (d, id) < (bd, bid)) {
            best = Some((d, id));
        }
    }
    best.map(|(_, id)| id)
}

/// One disjoint segment of link-outage coverage: every `t` in
/// `[from, until)` lies inside at least one raw window, and `min_until`
/// is the smallest `until` among the windows covering the segment — the
/// exact value [`FaultPlan::link_outage_until`] reports there. Segments
/// are built over the breakpoints of the raw windows, so the min-until
/// function is constant on each one.
#[derive(Debug, Clone, Copy)]
struct OutageSeg {
    from: u64,
    until: u64,
    min_until: u64,
}

/// One [`NodeDeath`] in the order the recovery driver handles deaths
/// (sorted by `(t, node)`), with everything the compiled recovering loop
/// needs precomputed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SortedDeath {
    /// Flattened node id (may exceed the mesh — such a death still rolls
    /// the run back, it just folds no traffic). The replay loop consumes
    /// it only through the precomputed `first`/`k_after`; kept for tests
    /// and debugging.
    #[allow(dead_code)]
    pub(crate) node: usize,
    /// Time of death, in ns.
    pub(crate) t: u64,
    /// [`FaultPlan::detection_time`] of `t`.
    pub(crate) detect: u64,
    /// First death of this node in handling order (later duplicates are
    /// detected again but fold nothing new).
    pub(crate) first: bool,
    /// Unique dead-node count once this death is handled: index into the
    /// compiled fold tables.
    pub(crate) k_after: usize,
}

/// A [`FaultPlan`] compiled for one mesh: outage windows bucketed per
/// link / per node into sorted interval arrays answered by binary
/// search, death and detection times precomputed, and the per-call
/// [`fold_target`] chase replaced by prefix fold tables (one per unique
/// death, in handling order). Every query is **bit-identical** to the
/// corresponding [`FaultPlan`] method — compiling changes the cost,
/// never the answer (pinned by unit and property tests).
///
/// One documented corner: a [`NodeDeath`] scheduled at exactly
/// `u64::MAX` is treated as never striking (its detection time saturates
/// there too, so no real schedule can observe it).
#[derive(Debug, Clone)]
pub struct CompiledFaultPlan {
    plan: FaultPlan,
    /// Per-link outage segments, flattened; link `l` owns
    /// `link_segs[link_off[l]..link_off[l + 1]]`.
    link_segs: Vec<OutageSeg>,
    link_off: Vec<u32>,
    /// Per-node outage windows with touching/overlapping windows merged
    /// (so one lookup lands where the oracle's chase ends), flattened
    /// like `link_segs`.
    node_wins: Vec<(u64, u64)>,
    node_off: Vec<u32>,
    /// Earliest death time per node; `u64::MAX` = never dies.
    death: Vec<u64>,
    /// `true` when any in-mesh node has a death time.
    has_death_times: bool,
    /// Death entries in handling order.
    deaths_sorted: Vec<SortedDeath>,
    /// `fold[k][node]`: where `node`'s traffic lands once the first `k`
    /// unique deaths are folded; `u32::MAX` = no survivor left.
    fold: Vec<Vec<u32>>,
}

impl CompiledFaultPlan {
    /// Compile `plan` for `mesh`. Outage windows naming links or nodes
    /// outside the mesh are dropped from the buckets (no route link or
    /// message endpoint can ever match them); deaths of out-of-mesh
    /// nodes are kept in the handling order, because the recovery driver
    /// still detects them and rolls back.
    pub fn new(plan: &FaultPlan, mesh: &Mesh2D) -> Self {
        let links = mesh.link_count();
        let nodes = mesh.nodes();
        let (px, py) = (mesh.px, mesh.py);

        let mut link_segs = Vec::new();
        let mut link_off = Vec::with_capacity(links + 1);
        link_off.push(0u32);
        let mut wins: Vec<(u64, u64)> = Vec::new();
        for l in 0..links {
            wins.clear();
            wins.extend(
                plan.link_outages
                    .iter()
                    .filter(|o| o.link == l && o.from < o.until)
                    .map(|o| (o.from, o.until)),
            );
            let mut cuts: Vec<u64> = wins.iter().flat_map(|&(f, u)| [f, u]).collect();
            cuts.sort_unstable();
            cuts.dedup();
            // A window covering any point of `[cut, next)` covers all of
            // it (its endpoints are themselves cuts), so the min-until on
            // the segment is the min over windows covering its start.
            for c in cuts.windows(2) {
                let covering = wins.iter().filter(|&&(f, u)| f <= c[0] && c[0] < u);
                if let Some(min_until) = covering.map(|&(_, u)| u).min() {
                    link_segs.push(OutageSeg {
                        from: c[0],
                        until: c[1],
                        min_until,
                    });
                }
            }
            link_off.push(link_segs.len() as u32);
        }

        let mut node_wins = Vec::new();
        let mut node_off = Vec::with_capacity(nodes + 1);
        node_off.push(0u32);
        for n in 0..nodes {
            wins.clear();
            wins.extend(
                plan.node_outages
                    .iter()
                    .filter(|o| o.node == n && o.from < o.until)
                    .map(|o| (o.from, o.until)),
            );
            wins.sort_unstable();
            let base = node_wins.len();
            // Merge touching windows too ([a, b) + [b, c) = [a, c)): the
            // oracle's chase steps from one window's `until` straight
            // into the next.
            for &(f, u) in &wins {
                if node_wins.len() > base {
                    let last: &mut (u64, u64) = node_wins.last_mut().unwrap();
                    if f <= last.1 {
                        last.1 = last.1.max(u);
                        continue;
                    }
                }
                node_wins.push((f, u));
            }
            node_off.push(node_wins.len() as u32);
        }

        let mut death = vec![u64::MAX; nodes];
        for d in &plan.node_deaths {
            if d.node < nodes {
                death[d.node] = death[d.node].min(d.t);
            }
        }
        let has_death_times = death.iter().any(|&t| t != u64::MAX);

        let mut order: Vec<&NodeDeath> = plan.node_deaths.iter().collect();
        order.sort_by_key(|d| (d.t, d.node));
        let mut dead: Vec<usize> = Vec::new();
        let mut fold = vec![fold_table(px, py, &dead)];
        let mut deaths_sorted = Vec::with_capacity(order.len());
        for d in order {
            let first = !dead.contains(&d.node);
            if first {
                dead.push(d.node);
                fold.push(fold_table(px, py, &dead));
            }
            deaths_sorted.push(SortedDeath {
                node: d.node,
                t: d.t,
                detect: plan.detection_time(d.t),
                first,
                k_after: dead.len(),
            });
        }

        CompiledFaultPlan {
            plan: plan.clone(),
            link_segs,
            link_off,
            node_wins,
            node_off,
            death,
            has_death_times,
            deaths_sorted,
            fold,
        }
    }

    /// The source plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    #[inline]
    fn link_bucket(&self, link: usize) -> &[OutageSeg] {
        &self.link_segs[self.link_off[link] as usize..self.link_off[link + 1] as usize]
    }

    #[inline]
    fn node_bucket(&self, node: usize) -> &[(u64, u64)] {
        &self.node_wins[self.node_off[node] as usize..self.node_off[node + 1] as usize]
    }

    /// Compiled [`FaultPlan::link_outage_until`]: one binary search
    /// instead of an O(#outages) scan.
    #[inline]
    pub fn link_outage_until(&self, link: usize, t: u64) -> Option<u64> {
        let segs = self.link_bucket(link);
        match segs.partition_point(|s| s.from <= t) {
            0 => None,
            i => {
                let s = &segs[i - 1];
                (t < s.until).then_some(s.min_until)
            }
        }
    }

    /// Compiled [`FaultPlan::link_dead_at`].
    #[inline]
    pub fn link_dead_at(&self, link: usize, t: u64) -> bool {
        self.link_outage_until(link, t).is_some()
    }

    /// Compiled [`FaultPlan::node_dead_at`].
    #[inline]
    pub fn node_dead_at(&self, node: usize, t: u64) -> bool {
        if self.death[node] != u64::MAX && t >= self.death[node] {
            return true;
        }
        let wins = self.node_bucket(node);
        match wins.partition_point(|w| w.0 <= t) {
            0 => false,
            i => t < wins[i - 1].1,
        }
    }

    /// Compiled [`FaultPlan::node_alive_after`]: the oracle's chase ends
    /// at the end of the merged window component containing `t` (or `t`
    /// itself outside every window), and reports `u64::MAX` exactly when
    /// the node's death time is at or before that point.
    #[inline]
    pub fn node_alive_after(&self, node: usize, t: u64) -> u64 {
        self.node_alive_after_mode(node, t, true)
    }

    /// The recovery driver strips deaths from the transport's view
    /// (`with_deaths = false`): deaths are survived by rollback, not
    /// black-holed.
    #[inline]
    pub(crate) fn node_alive_after_mode(&self, node: usize, t: u64, with_deaths: bool) -> u64 {
        let wins = self.node_bucket(node);
        let r = match wins.partition_point(|w| w.0 <= t) {
            0 => t,
            i => {
                let w = wins[i - 1];
                if t < w.1 {
                    w.1
                } else {
                    t
                }
            }
        };
        if with_deaths && self.death[node] != u64::MAX && self.death[node] <= r {
            return u64::MAX;
        }
        r
    }

    /// Any link-outage segment at all? Skipping the route outage scan
    /// when there is none is observationally identical.
    #[inline]
    pub fn has_link_outages(&self) -> bool {
        !self.link_segs.is_empty()
    }

    /// Must the transport check endpoint liveness? (`with_deaths` as in
    /// [`CompiledFaultPlan::node_alive_after_mode`].) When `false`, every
    /// liveness query would answer "alive now" and draw nothing, so the
    /// whole check is skipped.
    #[inline]
    pub(crate) fn check_nodes(&self, with_deaths: bool) -> bool {
        !self.node_wins.is_empty() || (with_deaths && self.has_death_times)
    }

    /// Death entries in the order the recovery driver handles them.
    pub(crate) fn sorted_deaths(&self) -> &[SortedDeath] {
        &self.deaths_sorted
    }

    /// Fold lookup after `k` unique deaths: compiled
    /// [`fold_target`] over the first `k` dead nodes (a live node maps
    /// to itself).
    #[inline]
    pub(crate) fn fold_lookup(&self, k: usize, node: usize) -> Option<usize> {
        let t = self.fold[k][node];
        (t != u32::MAX).then_some(t as usize)
    }
}

/// Dense [`fold_target`] table for one dead set.
fn fold_table(px: usize, py: usize, dead: &[usize]) -> Vec<u32> {
    (0..px * py)
        .map(|n| fold_target(px, py, n, dead).map_or(u32::MAX, |t| t as u32))
        .collect()
}

/// Accounting of the checkpoint/rollback recovery path
/// ([`crate::PhaseSim::simulate_phases_recovering`]). Absorbed into
/// [`FaultReport`] so one report covers both transport-level faults and
/// node-loss recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Permanent deaths that struck the run (a planned death scheduled
    /// past the committed end never happened to this run).
    pub deaths: usize,
    /// Deaths the failure detector noticed (every death inside the run).
    pub detected: usize,
    /// Rollbacks to a checkpoint.
    pub rollbacks: usize,
    /// Phases re-executed after a rollback.
    pub replayed_phases: usize,
    /// Committed-then-undone simulated time, in ns (work between the
    /// restored checkpoint and the detection point).
    pub lost_work_ns: u64,
    /// Checkpoints taken.
    pub checkpoints: usize,
    /// Time spent writing checkpoints, in ns (kept out of `makespan` so
    /// zero-death runs stay bit-identical to the unfaulted scheduler).
    pub checkpoint_overhead_ns: u64,
    /// Dead nodes whose traffic was folded onto survivors.
    pub folded_nodes: usize,
}

impl RecoveryReport {
    /// `true` when every injected death was detected and survived via a
    /// rollback (vacuously true for a death-free run).
    pub fn all_recovered(&self) -> bool {
        self.detected == self.deaths && self.rollbacks >= self.detected
    }

    /// Sum another recovery report into this one.
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.deaths += other.deaths;
        self.detected += other.detected;
        self.rollbacks += other.rollbacks;
        self.replayed_phases += other.replayed_phases;
        self.lost_work_ns += other.lost_work_ns;
        self.checkpoints += other.checkpoints;
        self.checkpoint_overhead_ns += other.checkpoint_overhead_ns;
        self.folded_nodes += other.folded_nodes;
    }
}

/// Outcome accounting of one fault-injected phase (or a sequence of
/// phases, summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Phase makespan in ns (including time wasted on lost attempts,
    /// retries, reroutes and duplicates).
    pub makespan: u64,
    /// Non-local messages the scheduler attempted to deliver.
    pub messages: usize,
    /// Messages delivered exactly once (receiver-side deduplication
    /// collapses duplicates).
    pub delivered: usize,
    /// Messages permanently lost (only possible with retries disabled).
    pub lost: usize,
    /// Total transmissions, including retries and duplicates.
    pub attempts: u64,
    /// Retransmissions after a loss.
    pub retries: u64,
    /// Duplicate transmissions suppressed at the receiver.
    pub duplicates: u64,
    /// Messages that abandoned the XY route for the YX route around a
    /// dead link.
    pub reroutes: u64,
    /// Waits for a link/node outage window to end.
    pub deferrals: u64,
    /// Attempts forced through the reliable channel at the attempt cap.
    pub escalations: u64,
    /// Messages sent into a permanently dead endpoint before the failure
    /// detector fired (black-holed: counted under `lost`).
    pub black_holes: u64,
    /// Times an adaptive schedule policy fell back from overlapped
    /// execution to phased barriers mid-run
    /// ([`crate::SchedulePolicy::Adaptive`]; all-zero under fixed
    /// policies).
    pub downgrades: u64,
    /// Checkpoint/rollback accounting (all-zero outside the recovery
    /// path).
    pub recovery: RecoveryReport,
}

impl FaultReport {
    /// Fraction of messages delivered (1.0 for an empty phase).
    pub fn delivered_fraction(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.delivered as f64 / self.messages as f64
        }
    }

    /// Committed makespan plus the recovery costs that don't show up in
    /// it: undone work and checkpoint writes. This is what a wall clock
    /// would measure across the whole run, rollbacks included.
    pub fn wall_clock_ns(&self) -> u64 {
        self.makespan + self.recovery.lost_work_ns + self.recovery.checkpoint_overhead_ns
    }

    /// Fold another phase's report into this one (makespans add —
    /// dependent phases run back to back).
    pub fn absorb(&mut self, other: &FaultReport) {
        self.makespan += other.makespan;
        self.messages += other.messages;
        self.delivered += other.delivered;
        self.lost += other.lost;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.duplicates += other.duplicates;
        self.reroutes += other.reroutes;
        self.deferrals += other.deferrals;
        self.escalations += other.escalations;
        self.black_holes += other.black_holes;
        self.downgrades += other.downgrades;
        self.recovery.absorb(&other.recovery);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_detection() {
        assert!(FaultPlan::none().is_zero_fault());
        assert!(!FaultPlan::with_drop(1, 0.1).is_zero_fault());
        let mut p = FaultPlan::none();
        p.link_outages.push(LinkOutage {
            link: 0,
            from: 0,
            until: 10,
        });
        assert!(!p.is_zero_fault());
    }

    #[test]
    fn outage_windows_are_half_open() {
        let mut p = FaultPlan::none();
        p.link_outages.push(LinkOutage {
            link: 3,
            from: 100,
            until: 200,
        });
        assert!(!p.link_dead_at(3, 99));
        assert!(p.link_dead_at(3, 100));
        assert!(p.link_dead_at(3, 199));
        assert!(!p.link_dead_at(3, 200));
        assert!(!p.link_dead_at(4, 150));
    }

    #[test]
    fn node_alive_after_chases_overlapping_windows() {
        let mut p = FaultPlan::none();
        p.node_outages.push(NodeOutage {
            node: 5,
            from: 0,
            until: 100,
        });
        p.node_outages.push(NodeOutage {
            node: 5,
            from: 80,
            until: 250,
        });
        assert_eq!(p.node_alive_after(5, 10), 250);
        assert_eq!(p.node_alive_after(5, 250), 250);
        assert_eq!(p.node_alive_after(6, 10), 10);
    }

    #[test]
    fn permanent_death_is_forever() {
        let mut p = FaultPlan::none();
        p.node_deaths.push(NodeDeath { node: 7, t: 1_000 });
        assert!(!p.is_zero_fault());
        assert!(!p.node_dead_at(7, 999));
        assert!(p.node_dead_at(7, 1_000));
        assert!(p.node_dead_at(7, u64::MAX));
        assert!(!p.node_dead_at(8, 1_000));
        assert_eq!(p.node_alive_after(7, 999), 999);
        assert_eq!(p.node_alive_after(7, 1_000), u64::MAX);
        assert_eq!(p.death_time(7), Some(1_000));
        assert_eq!(p.death_time(8), None);
    }

    #[test]
    fn death_at_outage_window_boundary() {
        // A death exactly at `until` of an outage window: the window
        // chase lands on `until`, which is the instant the node dies —
        // it must never be reported alive again.
        let mut p = FaultPlan::none();
        p.node_outages.push(NodeOutage {
            node: 3,
            from: 100,
            until: 200,
        });
        p.node_deaths.push(NodeDeath { node: 3, t: 200 });
        assert!(p.node_dead_at(3, 150));
        assert!(p.node_dead_at(3, 200));
        assert_eq!(p.node_alive_after(3, 150), u64::MAX);
        // Death *inside* the window: same answer — dead_at stays true
        // across the `until` boundary where the window alone would end.
        let mut q = FaultPlan::none();
        q.node_outages.push(NodeOutage {
            node: 3,
            from: 100,
            until: 200,
        });
        q.node_deaths.push(NodeDeath { node: 3, t: 150 });
        assert!(q.node_dead_at(3, 199));
        assert!(q.node_dead_at(3, 200));
        assert_eq!(q.node_alive_after(3, 120), u64::MAX);
        assert_eq!(q.node_alive_after(3, 99), 99);
        // Death strictly after the window: the chase exits the window
        // first, then sees the node still alive until `t`.
        let mut r = FaultPlan::none();
        r.node_outages.push(NodeOutage {
            node: 3,
            from: 100,
            until: 200,
        });
        r.node_deaths.push(NodeDeath { node: 3, t: 300 });
        assert_eq!(r.node_alive_after(3, 150), 200);
        assert!(!r.node_dead_at(3, 250));
        assert!(r.node_dead_at(3, 300));
    }

    #[test]
    fn detection_time_saturates() {
        let mut p = FaultPlan::none();
        p.detection_latency = 500;
        assert_eq!(p.detection_time(1_000), 1_500);
        assert_eq!(p.detection_time(u64::MAX - 10), u64::MAX);
    }

    #[test]
    fn fold_target_nearest_survivor() {
        // 4×4 mesh, node 5 = (1, 1) dies: nearest live neighbours are
        // 1, 4, 6, 9 at distance 1 — smallest id wins.
        assert_eq!(fold_target(4, 4, 5, &[5]), Some(1));
        // With 1 and 4 also dead, 6 is the nearest survivor.
        assert_eq!(fold_target(4, 4, 5, &[5, 1, 4]), Some(6));
        // A live node folds onto itself (distance 0).
        assert_eq!(fold_target(4, 4, 5, &[2]), Some(5));
        // Everyone dead → no target.
        let all: Vec<usize> = (0..4).collect();
        assert_eq!(fold_target(2, 2, 0, &all), None);
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let r = RetryPolicy {
            enabled: true,
            timeout: 100,
            backoff: 2,
            max_attempts: 8,
        };
        assert_eq!(r.backoff_delay(1), 100);
        assert_eq!(r.backoff_delay(2), 200);
        assert_eq!(r.backoff_delay(4), 800);
        // Deep attempt counts must not overflow.
        let big = RetryPolicy {
            timeout: u64::MAX / 2,
            ..r
        };
        assert_eq!(big.backoff_delay(40), u64::MAX);
    }

    #[test]
    fn report_absorb_sums_everything() {
        let mut a = FaultReport {
            makespan: 10,
            messages: 2,
            delivered: 2,
            ..FaultReport::default()
        };
        let b = FaultReport {
            makespan: 5,
            messages: 1,
            delivered: 0,
            lost: 1,
            attempts: 1,
            ..FaultReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.makespan, 15);
        assert_eq!(a.messages, 3);
        assert_eq!(a.delivered, 2);
        assert_eq!(a.lost, 1);
        assert!((a.delivered_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(FaultReport::default().delivered_fraction(), 1.0);
    }

    #[test]
    fn recovery_absorb_and_wall_clock() {
        let mut a = FaultReport {
            makespan: 100,
            recovery: RecoveryReport {
                deaths: 1,
                detected: 1,
                rollbacks: 1,
                replayed_phases: 2,
                lost_work_ns: 40,
                checkpoints: 3,
                checkpoint_overhead_ns: 9,
                folded_nodes: 1,
            },
            ..FaultReport::default()
        };
        assert!(a.recovery.all_recovered());
        assert_eq!(a.wall_clock_ns(), 149);
        let b = FaultReport {
            makespan: 50,
            recovery: RecoveryReport {
                deaths: 1,
                detected: 0,
                ..RecoveryReport::default()
            },
            ..FaultReport::default()
        };
        assert!(!b.recovery.all_recovered());
        a.absorb(&b);
        assert_eq!(a.makespan, 150);
        assert_eq!(a.recovery.deaths, 2);
        assert_eq!(a.recovery.detected, 1);
        assert_eq!(a.recovery.lost_work_ns, 40);
        assert!(RecoveryReport::default().all_recovered());
    }

    use crate::model::CostModel;

    fn mesh8x4() -> Mesh2D {
        Mesh2D::new(8, 4, CostModel::paragon())
    }

    #[test]
    fn compiled_link_lookup_keeps_exact_min_until() {
        // Overlapping windows: [0, 100) and [50, 200). At t = 60 both are
        // active and the oracle reports the *earlier* end (100), which a
        // naive merged-interval table would get wrong (200).
        let mut p = FaultPlan::none();
        p.link_outages.push(LinkOutage {
            link: 3,
            from: 0,
            until: 100,
        });
        p.link_outages.push(LinkOutage {
            link: 3,
            from: 50,
            until: 200,
        });
        let c = CompiledFaultPlan::new(&p, &mesh8x4());
        for t in [0u64, 49, 50, 60, 99, 100, 150, 199, 200, 500] {
            assert_eq!(
                c.link_outage_until(3, t),
                p.link_outage_until(3, t),
                "t = {t}"
            );
            assert_eq!(c.link_dead_at(3, t), p.link_dead_at(3, t), "t = {t}");
            assert_eq!(c.link_dead_at(4, t), p.link_dead_at(4, t));
        }
        assert_eq!(c.link_outage_until(3, 60), Some(100));
        assert!(c.has_link_outages());
        assert!(!CompiledFaultPlan::new(&FaultPlan::none(), &mesh8x4()).has_link_outages());
    }

    #[test]
    fn compiled_node_lookup_chases_like_oracle() {
        let mut p = FaultPlan::none();
        // Touching windows [0, 100) + [100, 250): the chase crosses the
        // boundary; an overlapping third [80, 120) changes nothing.
        for (from, until) in [(0, 100), (100, 250), (80, 120)] {
            p.node_outages.push(NodeOutage {
                node: 5,
                from,
                until,
            });
        }
        p.node_deaths.push(NodeDeath { node: 7, t: 1_000 });
        let c = CompiledFaultPlan::new(&p, &mesh8x4());
        for node in [5usize, 6, 7] {
            for t in [0u64, 10, 99, 100, 249, 250, 999, 1_000, 5_000] {
                assert_eq!(
                    c.node_alive_after(node, t),
                    p.node_alive_after(node, t),
                    "node {node} t {t}"
                );
                assert_eq!(
                    c.node_dead_at(node, t),
                    p.node_dead_at(node, t),
                    "node {node} t {t}"
                );
            }
        }
        assert_eq!(c.node_alive_after(5, 10), 250);
        // Death inside a window component blacks the node out forever.
        let mut q = FaultPlan::none();
        q.node_outages.push(NodeOutage {
            node: 3,
            from: 100,
            until: 200,
        });
        q.node_deaths.push(NodeDeath { node: 3, t: 200 });
        let cq = CompiledFaultPlan::new(&q, &mesh8x4());
        assert_eq!(cq.node_alive_after(3, 150), u64::MAX);
        assert_eq!(cq.node_alive_after(3, 99), 99);
        // The recovery driver's view ignores deaths.
        assert_eq!(cq.node_alive_after_mode(3, 150, false), 200);
        assert!(cq.check_nodes(false) && cq.check_nodes(true));
        let bare = CompiledFaultPlan::new(&FaultPlan::none(), &mesh8x4());
        assert!(!bare.check_nodes(true));
    }

    #[test]
    fn compiled_death_order_and_fold_tables() {
        let m = mesh8x4();
        let mut p = FaultPlan::none();
        p.detection_latency = 500;
        // Out of handling order, one duplicate node, one out-of-mesh node.
        p.node_deaths.push(NodeDeath { node: 9, t: 300 });
        p.node_deaths.push(NodeDeath { node: 4, t: 100 });
        p.node_deaths.push(NodeDeath { node: 4, t: 200 });
        p.node_deaths.push(NodeDeath { node: 999, t: 250 });
        let c = CompiledFaultPlan::new(&p, &m);
        let d = c.sorted_deaths();
        let order: Vec<(usize, u64, u64, bool, usize)> = d
            .iter()
            .map(|e| (e.node, e.t, e.detect, e.first, e.k_after))
            .collect();
        assert_eq!(
            order,
            vec![
                (4, 100, 600, true, 1),
                (4, 200, 700, false, 1),
                (999, 250, 750, true, 2),
                (9, 300, 800, true, 3),
            ]
        );
        // Fold tables match the per-call chase at each prefix.
        let dead_prefixes: [&[usize]; 4] = [&[], &[4], &[4, 999], &[4, 999, 9]];
        for (k, dead) in dead_prefixes.iter().enumerate() {
            for node in 0..m.nodes() {
                assert_eq!(
                    c.fold_lookup(k, node),
                    fold_target(m.px, m.py, node, dead),
                    "k {k} node {node}"
                );
            }
        }
        // In-mesh deaths feed the transport's death times; the
        // out-of-mesh one does not.
        assert_eq!(c.node_alive_after(4, 100), u64::MAX);
        assert_eq!(c.node_alive_after(9, 299), 299);
        assert_eq!(c.node_alive_after(9, 300), u64::MAX);
    }

    #[test]
    fn compiled_lookup_ignores_out_of_range_outages() {
        let m = mesh8x4();
        let mut p = FaultPlan::none();
        p.link_outages.push(LinkOutage {
            link: m.link_count() + 7,
            from: 0,
            until: 100,
        });
        p.node_outages.push(NodeOutage {
            node: m.nodes() + 3,
            from: 0,
            until: 100,
        });
        // Empty windows are dropped too.
        p.link_outages.push(LinkOutage {
            link: 0,
            from: 50,
            until: 50,
        });
        let c = CompiledFaultPlan::new(&p, &m);
        assert!(!c.has_link_outages());
        assert!(!c.check_nodes(true));
        for l in 0..m.link_count() {
            assert_eq!(c.link_outage_until(l, 10), p.link_outage_until(l, 10));
        }
    }
}
