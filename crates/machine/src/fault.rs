//! Fault injection: the failure model the resilient schedulers simulate.
//!
//! The paper's numbers come from real CM-5 / Paragon runs, where links
//! stall, messages get lost on the wire, and the CM-5's control network
//! can be unavailable to a partition. A [`FaultPlan`] describes such an
//! adversarial environment deterministically:
//!
//! * **link outages** — absolute-time windows during which a directed
//!   mesh link is dead (the router around it must be avoided or waited
//!   out);
//! * **node outages** — windows during which a node can neither send nor
//!   receive (messages defer to the end of the window);
//! * **message drop / duplication probabilities** — sampled from the
//!   in-workspace [`crate::rng::XorShift64`] seeded by the plan, so every
//!   run of the same plan observes the same fault sequence;
//! * **control-network outage** — the CM-5 degraded mode in which
//!   hardware collectives are unavailable and [`crate::FatTree`] falls
//!   back to software binomial trees over the data network;
//! * a **retry policy** — timeout plus exponential backoff, with a hard
//!   attempt cap after which the transport escalates to a reliable
//!   channel (the attempt is forced through), so delivery is guaranteed
//!   whenever retries are enabled, whatever the drop probability.
//!
//! [`crate::PhaseSim::simulate_phase_faulty`] consumes the plan and
//! returns a [`FaultReport`] with full makespan accounting, so the cost
//! of degradation is measurable (see the `faultsweep` bench bin).

/// A window `[from, until)` of simulated time during which a directed
/// link is dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// Dense link index (see [`crate::mesh::LinkId::index`]).
    pub link: usize,
    /// Start of the outage (inclusive), in ns.
    pub from: u64,
    /// End of the outage (exclusive), in ns.
    pub until: u64,
}

/// A window `[from, until)` during which a node can neither send nor
/// receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOutage {
    /// Flattened node id.
    pub node: usize,
    /// Start of the outage (inclusive), in ns.
    pub from: u64,
    /// End of the outage (exclusive), in ns.
    pub until: u64,
}

/// Retransmission policy: timeout, exponential backoff, and a hard
/// attempt cap that guarantees progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Whether lost messages are retransmitted at all. With retries off,
    /// a dropped message is lost for good (delivered fraction < 1).
    pub enabled: bool,
    /// Base retransmission timeout added after a lost attempt, in ns.
    pub timeout: u64,
    /// Backoff multiplier applied per failed attempt (`timeout`,
    /// `timeout·b`, `timeout·b²`, …).
    pub backoff: u32,
    /// Hard cap on attempts per message. The final attempt is escalated
    /// to a reliable channel and always succeeds, so the delivery
    /// guarantee holds even at drop probability 1. Clamped to ≥ 1.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            enabled: true,
            timeout: 50_000, // ≈ one Paragon message start-up
            backoff: 2,
            max_attempts: 16,
        }
    }
}

impl RetryPolicy {
    /// No retransmission: one attempt, losses are final.
    pub fn disabled() -> Self {
        RetryPolicy {
            enabled: false,
            ..RetryPolicy::default()
        }
    }

    /// Delay inserted before attempt `attempt + 1` after `attempt`
    /// failed attempts (1-based), saturating.
    pub fn backoff_delay(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        self.timeout
            .saturating_mul((self.backoff.max(1) as u64).saturating_pow(exp))
    }
}

/// A deterministic fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed: the same plan always observes the same fault sequence.
    pub seed: u64,
    /// Probability that one transmission attempt is lost on the wire
    /// (the attempt still occupies its links — bandwidth is wasted).
    pub drop_prob: f64,
    /// Probability that a delivered message is retransmitted once more
    /// (a lost acknowledgement); the receiver deduplicates, so this
    /// wastes bandwidth without double-delivering.
    pub dup_prob: f64,
    /// Dead-link windows.
    pub link_outages: Vec<LinkOutage>,
    /// Dead-node windows.
    pub node_outages: Vec<NodeOutage>,
    /// CM-5 degraded mode: the control network is unavailable and
    /// hardware collectives fall back to software binomial trees.
    pub ctrl_outage: bool,
    /// Retransmission policy.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The fault-free plan: bit-identical schedules to the unfaulted
    /// simulator.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            link_outages: Vec::new(),
            node_outages: Vec::new(),
            ctrl_outage: false,
            retry: RetryPolicy::default(),
        }
    }

    /// A plan that only drops messages, with the default retry policy.
    pub fn with_drop(seed: u64, drop_prob: f64) -> Self {
        FaultPlan {
            seed,
            drop_prob,
            ..FaultPlan::none()
        }
    }

    /// `true` when the plan cannot perturb a schedule at all.
    pub fn is_zero_fault(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.link_outages.is_empty()
            && self.node_outages.is_empty()
    }

    /// Is `link` dead at time `t`?
    #[inline]
    pub fn link_dead_at(&self, link: usize, t: u64) -> bool {
        self.link_outages
            .iter()
            .any(|o| o.link == link && o.from <= t && t < o.until)
    }

    /// If `link` is inside an outage window at time `t`, the earliest
    /// `until` among the active windows (the next time worth re-checking).
    pub fn link_outage_until(&self, link: usize, t: u64) -> Option<u64> {
        self.link_outages
            .iter()
            .filter(|o| o.link == link && o.from <= t && t < o.until)
            .map(|o| o.until)
            .min()
    }

    /// Is `node` dead at time `t`?
    #[inline]
    pub fn node_dead_at(&self, node: usize, t: u64) -> bool {
        self.node_outages
            .iter()
            .any(|o| o.node == node && o.from <= t && t < o.until)
    }

    /// Earliest time ≥ `t` at which `node` is alive (nested / overlapping
    /// windows are chased to a fixed point).
    pub fn node_alive_after(&self, node: usize, mut t: u64) -> u64 {
        loop {
            let Some(o) = self
                .node_outages
                .iter()
                .find(|o| o.node == node && o.from <= t && t < o.until)
            else {
                return t;
            };
            t = o.until;
        }
    }
}

/// Outcome accounting of one fault-injected phase (or a sequence of
/// phases, summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Phase makespan in ns (including time wasted on lost attempts,
    /// retries, reroutes and duplicates).
    pub makespan: u64,
    /// Non-local messages the scheduler attempted to deliver.
    pub messages: usize,
    /// Messages delivered exactly once (receiver-side deduplication
    /// collapses duplicates).
    pub delivered: usize,
    /// Messages permanently lost (only possible with retries disabled).
    pub lost: usize,
    /// Total transmissions, including retries and duplicates.
    pub attempts: u64,
    /// Retransmissions after a loss.
    pub retries: u64,
    /// Duplicate transmissions suppressed at the receiver.
    pub duplicates: u64,
    /// Messages that abandoned the XY route for the YX route around a
    /// dead link.
    pub reroutes: u64,
    /// Waits for a link/node outage window to end.
    pub deferrals: u64,
    /// Attempts forced through the reliable channel at the attempt cap.
    pub escalations: u64,
}

impl FaultReport {
    /// Fraction of messages delivered (1.0 for an empty phase).
    pub fn delivered_fraction(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.delivered as f64 / self.messages as f64
        }
    }

    /// Fold another phase's report into this one (makespans add —
    /// dependent phases run back to back).
    pub fn absorb(&mut self, other: &FaultReport) {
        self.makespan += other.makespan;
        self.messages += other.messages;
        self.delivered += other.delivered;
        self.lost += other.lost;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.duplicates += other.duplicates;
        self.reroutes += other.reroutes;
        self.deferrals += other.deferrals;
        self.escalations += other.escalations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_detection() {
        assert!(FaultPlan::none().is_zero_fault());
        assert!(!FaultPlan::with_drop(1, 0.1).is_zero_fault());
        let mut p = FaultPlan::none();
        p.link_outages.push(LinkOutage {
            link: 0,
            from: 0,
            until: 10,
        });
        assert!(!p.is_zero_fault());
    }

    #[test]
    fn outage_windows_are_half_open() {
        let mut p = FaultPlan::none();
        p.link_outages.push(LinkOutage {
            link: 3,
            from: 100,
            until: 200,
        });
        assert!(!p.link_dead_at(3, 99));
        assert!(p.link_dead_at(3, 100));
        assert!(p.link_dead_at(3, 199));
        assert!(!p.link_dead_at(3, 200));
        assert!(!p.link_dead_at(4, 150));
    }

    #[test]
    fn node_alive_after_chases_overlapping_windows() {
        let mut p = FaultPlan::none();
        p.node_outages.push(NodeOutage {
            node: 5,
            from: 0,
            until: 100,
        });
        p.node_outages.push(NodeOutage {
            node: 5,
            from: 80,
            until: 250,
        });
        assert_eq!(p.node_alive_after(5, 10), 250);
        assert_eq!(p.node_alive_after(5, 250), 250);
        assert_eq!(p.node_alive_after(6, 10), 10);
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let r = RetryPolicy {
            enabled: true,
            timeout: 100,
            backoff: 2,
            max_attempts: 8,
        };
        assert_eq!(r.backoff_delay(1), 100);
        assert_eq!(r.backoff_delay(2), 200);
        assert_eq!(r.backoff_delay(4), 800);
        // Deep attempt counts must not overflow.
        let big = RetryPolicy {
            timeout: u64::MAX / 2,
            ..r
        };
        assert_eq!(big.backoff_delay(40), u64::MAX);
    }

    #[test]
    fn report_absorb_sums_everything() {
        let mut a = FaultReport {
            makespan: 10,
            messages: 2,
            delivered: 2,
            ..FaultReport::default()
        };
        let b = FaultReport {
            makespan: 5,
            messages: 1,
            delivered: 0,
            lost: 1,
            attempts: 1,
            ..FaultReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.makespan, 15);
        assert_eq!(a.messages, 3);
        assert_eq!(a.delivered, 2);
        assert_eq!(a.lost, 1);
        assert!((a.delivered_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(FaultReport::default().delivered_fraction(), 1.0);
    }
}
