//! Fault injection: the failure model the resilient schedulers simulate.
//!
//! The paper's numbers come from real CM-5 / Paragon runs, where links
//! stall, messages get lost on the wire, and the CM-5's control network
//! can be unavailable to a partition. A [`FaultPlan`] describes such an
//! adversarial environment deterministically:
//!
//! * **link outages** — absolute-time windows during which a directed
//!   mesh link is dead (the router around it must be avoided or waited
//!   out);
//! * **node outages** — windows during which a node can neither send nor
//!   receive (messages defer to the end of the window);
//! * **message drop / duplication probabilities** — sampled from the
//!   in-workspace [`crate::rng::XorShift64`] seeded by the plan, so every
//!   run of the same plan observes the same fault sequence;
//! * **control-network outage** — the CM-5 degraded mode in which
//!   hardware collectives are unavailable and [`crate::FatTree`] falls
//!   back to software binomial trees over the data network;
//! * **permanent node deaths** — a [`NodeDeath`] kills a node for good at
//!   an absolute time; a failure detector with configurable
//!   [`FaultPlan::detection_latency`] notices the death and triggers the
//!   checkpoint/rollback recovery path
//!   ([`crate::PhaseSim::simulate_phases_recovering`]);
//! * a **retry policy** — timeout plus exponential backoff, with a hard
//!   attempt cap after which the transport escalates to a reliable
//!   channel (the attempt is forced through), so delivery is guaranteed
//!   whenever retries are enabled, whatever the drop probability.
//!
//! [`crate::PhaseSim::simulate_phase_faulty`] consumes the plan and
//! returns a [`FaultReport`] with full makespan accounting, so the cost
//! of degradation is measurable (see the `faultsweep` and `recoverysweep`
//! bench bins). Recovery outcomes (rollbacks, replayed phases, lost work)
//! land in the embedded [`RecoveryReport`].

/// A window `[from, until)` of simulated time during which a directed
/// link is dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// Dense link index (see [`crate::mesh::LinkId::index`]).
    pub link: usize,
    /// Start of the outage (inclusive), in ns.
    pub from: u64,
    /// End of the outage (exclusive), in ns.
    pub until: u64,
}

/// A window `[from, until)` during which a node can neither send nor
/// receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOutage {
    /// Flattened node id.
    pub node: usize,
    /// Start of the outage (inclusive), in ns.
    pub from: u64,
    /// End of the outage (exclusive), in ns.
    pub until: u64,
}

/// A permanent node failure: from time `t` on, the node never sends or
/// receives again. Unlike a [`NodeOutage`] window, a death is only
/// survivable by rolling back to a checkpoint and folding the dead
/// node's work onto survivors
/// ([`crate::PhaseSim::simulate_phases_recovering`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDeath {
    /// Flattened node id.
    pub node: usize,
    /// Time of death (inclusive), in ns.
    pub t: u64,
}

/// Retransmission policy: timeout, exponential backoff, and a hard
/// attempt cap that guarantees progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Whether lost messages are retransmitted at all. With retries off,
    /// a dropped message is lost for good (delivered fraction < 1).
    pub enabled: bool,
    /// Base retransmission timeout added after a lost attempt, in ns.
    pub timeout: u64,
    /// Backoff multiplier applied per failed attempt (`timeout`,
    /// `timeout·b`, `timeout·b²`, …).
    pub backoff: u32,
    /// Hard cap on attempts per message. The final attempt is escalated
    /// to a reliable channel and always succeeds, so the delivery
    /// guarantee holds even at drop probability 1. Clamped to ≥ 1.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            enabled: true,
            timeout: 50_000, // ≈ one Paragon message start-up
            backoff: 2,
            max_attempts: 16,
        }
    }
}

impl RetryPolicy {
    /// No retransmission: one attempt, losses are final.
    pub fn disabled() -> Self {
        RetryPolicy {
            enabled: false,
            ..RetryPolicy::default()
        }
    }

    /// Delay inserted before attempt `attempt + 1` after `attempt`
    /// failed attempts (1-based), saturating.
    pub fn backoff_delay(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        self.timeout
            .saturating_mul((self.backoff.max(1) as u64).saturating_pow(exp))
    }
}

/// A deterministic fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed: the same plan always observes the same fault sequence.
    pub seed: u64,
    /// Probability that one transmission attempt is lost on the wire
    /// (the attempt still occupies its links — bandwidth is wasted).
    pub drop_prob: f64,
    /// Probability that a delivered message is retransmitted once more
    /// (a lost acknowledgement); the receiver deduplicates, so this
    /// wastes bandwidth without double-delivering.
    pub dup_prob: f64,
    /// Dead-link windows.
    pub link_outages: Vec<LinkOutage>,
    /// Dead-node windows.
    pub node_outages: Vec<NodeOutage>,
    /// Permanent node deaths (recoverable only via checkpoint/rollback).
    pub node_deaths: Vec<NodeDeath>,
    /// Failure-detector latency in ns: a death at `t` is *detected* at
    /// `t + detection_latency`; until then the scheduler keeps sending
    /// into the dead node and that work is lost on rollback.
    pub detection_latency: u64,
    /// CM-5 degraded mode: the control network is unavailable and
    /// hardware collectives fall back to software binomial trees.
    pub ctrl_outage: bool,
    /// Retransmission policy.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The fault-free plan: bit-identical schedules to the unfaulted
    /// simulator.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            link_outages: Vec::new(),
            node_outages: Vec::new(),
            node_deaths: Vec::new(),
            detection_latency: 0,
            ctrl_outage: false,
            retry: RetryPolicy::default(),
        }
    }

    /// A plan that only drops messages, with the default retry policy.
    pub fn with_drop(seed: u64, drop_prob: f64) -> Self {
        FaultPlan {
            seed,
            drop_prob,
            ..FaultPlan::none()
        }
    }

    /// `true` when the plan cannot perturb a schedule at all.
    pub fn is_zero_fault(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.link_outages.is_empty()
            && self.node_outages.is_empty()
            && self.node_deaths.is_empty()
    }

    /// Is `link` dead at time `t`?
    #[inline]
    pub fn link_dead_at(&self, link: usize, t: u64) -> bool {
        self.link_outages
            .iter()
            .any(|o| o.link == link && o.from <= t && t < o.until)
    }

    /// If `link` is inside an outage window at time `t`, the earliest
    /// `until` among the active windows (the next time worth re-checking).
    pub fn link_outage_until(&self, link: usize, t: u64) -> Option<u64> {
        self.link_outages
            .iter()
            .filter(|o| o.link == link && o.from <= t && t < o.until)
            .map(|o| o.until)
            .min()
    }

    /// Is `node` dead at time `t` — inside an outage window *or* past a
    /// permanent death?
    #[inline]
    pub fn node_dead_at(&self, node: usize, t: u64) -> bool {
        self.node_outages
            .iter()
            .any(|o| o.node == node && o.from <= t && t < o.until)
            || self.node_deaths.iter().any(|d| d.node == node && t >= d.t)
    }

    /// Earliest time ≥ `t` at which `node` is alive (nested / overlapping
    /// windows are chased to a fixed point). A node past a permanent
    /// death never comes back: the result is `u64::MAX`, consistent with
    /// [`FaultPlan::node_dead_at`] returning `true` forever.
    pub fn node_alive_after(&self, node: usize, mut t: u64) -> u64 {
        loop {
            if self.node_deaths.iter().any(|d| d.node == node && t >= d.t) {
                return u64::MAX;
            }
            let Some(o) = self
                .node_outages
                .iter()
                .find(|o| o.node == node && o.from <= t && t < o.until)
            else {
                return t;
            };
            t = o.until;
        }
    }

    /// Time of `node`'s permanent death, if the plan kills it (earliest,
    /// should the plan list several).
    pub fn death_time(&self, node: usize) -> Option<u64> {
        self.node_deaths
            .iter()
            .filter(|d| d.node == node)
            .map(|d| d.t)
            .min()
    }

    /// Time at which the failure detector notices a death at `t`
    /// (saturating).
    #[inline]
    pub fn detection_time(&self, t: u64) -> u64 {
        t.saturating_add(self.detection_latency)
    }
}

/// Deterministic fold target for a dead node on a `px × py` mesh: the
/// live node (not in `dead`) nearest in Manhattan distance, ties broken
/// by the smaller node id. This is the rule both the simulator's message
/// folding and the core remapper's degraded-grid placement share, so the
/// two sides agree on where a dead node's work lands. Returns `None`
/// only when every node is dead.
pub fn fold_target(px: usize, py: usize, node: usize, dead: &[usize]) -> Option<usize> {
    let (nx, ny) = ((node % px) as i64, (node / px) as i64);
    let mut best: Option<(i64, usize)> = None;
    for id in 0..px * py {
        if dead.contains(&id) {
            continue;
        }
        let (x, y) = ((id % px) as i64, (id / px) as i64);
        let d = (x - nx).abs() + (y - ny).abs();
        if best.is_none_or(|(bd, bid)| (d, id) < (bd, bid)) {
            best = Some((d, id));
        }
    }
    best.map(|(_, id)| id)
}

/// Accounting of the checkpoint/rollback recovery path
/// ([`crate::PhaseSim::simulate_phases_recovering`]). Absorbed into
/// [`FaultReport`] so one report covers both transport-level faults and
/// node-loss recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Permanent deaths that struck the run (a planned death scheduled
    /// past the committed end never happened to this run).
    pub deaths: usize,
    /// Deaths the failure detector noticed (every death inside the run).
    pub detected: usize,
    /// Rollbacks to a checkpoint.
    pub rollbacks: usize,
    /// Phases re-executed after a rollback.
    pub replayed_phases: usize,
    /// Committed-then-undone simulated time, in ns (work between the
    /// restored checkpoint and the detection point).
    pub lost_work_ns: u64,
    /// Checkpoints taken.
    pub checkpoints: usize,
    /// Time spent writing checkpoints, in ns (kept out of `makespan` so
    /// zero-death runs stay bit-identical to the unfaulted scheduler).
    pub checkpoint_overhead_ns: u64,
    /// Dead nodes whose traffic was folded onto survivors.
    pub folded_nodes: usize,
}

impl RecoveryReport {
    /// `true` when every injected death was detected and survived via a
    /// rollback (vacuously true for a death-free run).
    pub fn all_recovered(&self) -> bool {
        self.detected == self.deaths && self.rollbacks >= self.detected
    }

    /// Sum another recovery report into this one.
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.deaths += other.deaths;
        self.detected += other.detected;
        self.rollbacks += other.rollbacks;
        self.replayed_phases += other.replayed_phases;
        self.lost_work_ns += other.lost_work_ns;
        self.checkpoints += other.checkpoints;
        self.checkpoint_overhead_ns += other.checkpoint_overhead_ns;
        self.folded_nodes += other.folded_nodes;
    }
}

/// Outcome accounting of one fault-injected phase (or a sequence of
/// phases, summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Phase makespan in ns (including time wasted on lost attempts,
    /// retries, reroutes and duplicates).
    pub makespan: u64,
    /// Non-local messages the scheduler attempted to deliver.
    pub messages: usize,
    /// Messages delivered exactly once (receiver-side deduplication
    /// collapses duplicates).
    pub delivered: usize,
    /// Messages permanently lost (only possible with retries disabled).
    pub lost: usize,
    /// Total transmissions, including retries and duplicates.
    pub attempts: u64,
    /// Retransmissions after a loss.
    pub retries: u64,
    /// Duplicate transmissions suppressed at the receiver.
    pub duplicates: u64,
    /// Messages that abandoned the XY route for the YX route around a
    /// dead link.
    pub reroutes: u64,
    /// Waits for a link/node outage window to end.
    pub deferrals: u64,
    /// Attempts forced through the reliable channel at the attempt cap.
    pub escalations: u64,
    /// Messages sent into a permanently dead endpoint before the failure
    /// detector fired (black-holed: counted under `lost`).
    pub black_holes: u64,
    /// Checkpoint/rollback accounting (all-zero outside the recovery
    /// path).
    pub recovery: RecoveryReport,
}

impl FaultReport {
    /// Fraction of messages delivered (1.0 for an empty phase).
    pub fn delivered_fraction(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.delivered as f64 / self.messages as f64
        }
    }

    /// Committed makespan plus the recovery costs that don't show up in
    /// it: undone work and checkpoint writes. This is what a wall clock
    /// would measure across the whole run, rollbacks included.
    pub fn wall_clock_ns(&self) -> u64 {
        self.makespan + self.recovery.lost_work_ns + self.recovery.checkpoint_overhead_ns
    }

    /// Fold another phase's report into this one (makespans add —
    /// dependent phases run back to back).
    pub fn absorb(&mut self, other: &FaultReport) {
        self.makespan += other.makespan;
        self.messages += other.messages;
        self.delivered += other.delivered;
        self.lost += other.lost;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.duplicates += other.duplicates;
        self.reroutes += other.reroutes;
        self.deferrals += other.deferrals;
        self.escalations += other.escalations;
        self.black_holes += other.black_holes;
        self.recovery.absorb(&other.recovery);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_detection() {
        assert!(FaultPlan::none().is_zero_fault());
        assert!(!FaultPlan::with_drop(1, 0.1).is_zero_fault());
        let mut p = FaultPlan::none();
        p.link_outages.push(LinkOutage {
            link: 0,
            from: 0,
            until: 10,
        });
        assert!(!p.is_zero_fault());
    }

    #[test]
    fn outage_windows_are_half_open() {
        let mut p = FaultPlan::none();
        p.link_outages.push(LinkOutage {
            link: 3,
            from: 100,
            until: 200,
        });
        assert!(!p.link_dead_at(3, 99));
        assert!(p.link_dead_at(3, 100));
        assert!(p.link_dead_at(3, 199));
        assert!(!p.link_dead_at(3, 200));
        assert!(!p.link_dead_at(4, 150));
    }

    #[test]
    fn node_alive_after_chases_overlapping_windows() {
        let mut p = FaultPlan::none();
        p.node_outages.push(NodeOutage {
            node: 5,
            from: 0,
            until: 100,
        });
        p.node_outages.push(NodeOutage {
            node: 5,
            from: 80,
            until: 250,
        });
        assert_eq!(p.node_alive_after(5, 10), 250);
        assert_eq!(p.node_alive_after(5, 250), 250);
        assert_eq!(p.node_alive_after(6, 10), 10);
    }

    #[test]
    fn permanent_death_is_forever() {
        let mut p = FaultPlan::none();
        p.node_deaths.push(NodeDeath { node: 7, t: 1_000 });
        assert!(!p.is_zero_fault());
        assert!(!p.node_dead_at(7, 999));
        assert!(p.node_dead_at(7, 1_000));
        assert!(p.node_dead_at(7, u64::MAX));
        assert!(!p.node_dead_at(8, 1_000));
        assert_eq!(p.node_alive_after(7, 999), 999);
        assert_eq!(p.node_alive_after(7, 1_000), u64::MAX);
        assert_eq!(p.death_time(7), Some(1_000));
        assert_eq!(p.death_time(8), None);
    }

    #[test]
    fn death_at_outage_window_boundary() {
        // A death exactly at `until` of an outage window: the window
        // chase lands on `until`, which is the instant the node dies —
        // it must never be reported alive again.
        let mut p = FaultPlan::none();
        p.node_outages.push(NodeOutage {
            node: 3,
            from: 100,
            until: 200,
        });
        p.node_deaths.push(NodeDeath { node: 3, t: 200 });
        assert!(p.node_dead_at(3, 150));
        assert!(p.node_dead_at(3, 200));
        assert_eq!(p.node_alive_after(3, 150), u64::MAX);
        // Death *inside* the window: same answer — dead_at stays true
        // across the `until` boundary where the window alone would end.
        let mut q = FaultPlan::none();
        q.node_outages.push(NodeOutage {
            node: 3,
            from: 100,
            until: 200,
        });
        q.node_deaths.push(NodeDeath { node: 3, t: 150 });
        assert!(q.node_dead_at(3, 199));
        assert!(q.node_dead_at(3, 200));
        assert_eq!(q.node_alive_after(3, 120), u64::MAX);
        assert_eq!(q.node_alive_after(3, 99), 99);
        // Death strictly after the window: the chase exits the window
        // first, then sees the node still alive until `t`.
        let mut r = FaultPlan::none();
        r.node_outages.push(NodeOutage {
            node: 3,
            from: 100,
            until: 200,
        });
        r.node_deaths.push(NodeDeath { node: 3, t: 300 });
        assert_eq!(r.node_alive_after(3, 150), 200);
        assert!(!r.node_dead_at(3, 250));
        assert!(r.node_dead_at(3, 300));
    }

    #[test]
    fn detection_time_saturates() {
        let mut p = FaultPlan::none();
        p.detection_latency = 500;
        assert_eq!(p.detection_time(1_000), 1_500);
        assert_eq!(p.detection_time(u64::MAX - 10), u64::MAX);
    }

    #[test]
    fn fold_target_nearest_survivor() {
        // 4×4 mesh, node 5 = (1, 1) dies: nearest live neighbours are
        // 1, 4, 6, 9 at distance 1 — smallest id wins.
        assert_eq!(fold_target(4, 4, 5, &[5]), Some(1));
        // With 1 and 4 also dead, 6 is the nearest survivor.
        assert_eq!(fold_target(4, 4, 5, &[5, 1, 4]), Some(6));
        // A live node folds onto itself (distance 0).
        assert_eq!(fold_target(4, 4, 5, &[2]), Some(5));
        // Everyone dead → no target.
        let all: Vec<usize> = (0..4).collect();
        assert_eq!(fold_target(2, 2, 0, &all), None);
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let r = RetryPolicy {
            enabled: true,
            timeout: 100,
            backoff: 2,
            max_attempts: 8,
        };
        assert_eq!(r.backoff_delay(1), 100);
        assert_eq!(r.backoff_delay(2), 200);
        assert_eq!(r.backoff_delay(4), 800);
        // Deep attempt counts must not overflow.
        let big = RetryPolicy {
            timeout: u64::MAX / 2,
            ..r
        };
        assert_eq!(big.backoff_delay(40), u64::MAX);
    }

    #[test]
    fn report_absorb_sums_everything() {
        let mut a = FaultReport {
            makespan: 10,
            messages: 2,
            delivered: 2,
            ..FaultReport::default()
        };
        let b = FaultReport {
            makespan: 5,
            messages: 1,
            delivered: 0,
            lost: 1,
            attempts: 1,
            ..FaultReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.makespan, 15);
        assert_eq!(a.messages, 3);
        assert_eq!(a.delivered, 2);
        assert_eq!(a.lost, 1);
        assert!((a.delivered_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(FaultReport::default().delivered_fraction(), 1.0);
    }

    #[test]
    fn recovery_absorb_and_wall_clock() {
        let mut a = FaultReport {
            makespan: 100,
            recovery: RecoveryReport {
                deaths: 1,
                detected: 1,
                rollbacks: 1,
                replayed_phases: 2,
                lost_work_ns: 40,
                checkpoints: 3,
                checkpoint_overhead_ns: 9,
                folded_nodes: 1,
            },
            ..FaultReport::default()
        };
        assert!(a.recovery.all_recovered());
        assert_eq!(a.wall_clock_ns(), 149);
        let b = FaultReport {
            makespan: 50,
            recovery: RecoveryReport {
                deaths: 1,
                detected: 0,
                ..RecoveryReport::default()
            },
            ..FaultReport::default()
        };
        assert!(!b.recovery.all_recovered());
        a.absorb(&b);
        assert_eq!(a.makespan, 150);
        assert_eq!(a.recovery.deaths, 2);
        assert_eq!(a.recovery.detected, 1);
        assert_eq!(a.recovery.lost_work_ns, 40);
        assert!(RecoveryReport::default().all_recovered());
    }
}
