//! Parallel parameter sweeps with crossbeam scoped threads.
//!
//! The benchmark harness evaluates many (machine, distribution, k, size)
//! configurations; each simulation is independent, so we fan them out over
//! the available cores with `crossbeam::scope` — no `'static` bounds, no
//! locks, results returned in input order.

/// Run `f` over every config on `threads` worker threads (chunked
//  statically), preserving input order in the output.
pub fn par_sweep<C, R, F>(configs: &[C], threads: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send + Default + Clone,
    F: Fn(&C) -> R + Sync,
{
    let n = configs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let mut results = vec![R::default(); n];
    let chunk = n.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (slot, work) in results.chunks_mut(chunk).zip(configs.chunks(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (out, cfg) in slot.iter_mut().zip(work) {
                    *out = f(cfg);
                }
            });
        }
    })
    .expect("sweep worker panicked");
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh2D;
    use crate::model::{CostModel, PMsg};

    #[test]
    fn preserves_order_and_values() {
        let configs: Vec<u64> = (0..100).collect();
        let got = par_sweep(&configs, 8, |&c| c * 2);
        let want: Vec<u64> = configs.iter().map(|c| c * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let configs: Vec<usize> = (1..20).collect();
        let f = |&n: &usize| {
            let m = Mesh2D::new(4, 4, CostModel::paragon());
            let msgs: Vec<PMsg> = (0..n)
                .map(|i| PMsg {
                    src: i % 16,
                    dst: (i * 7 + 3) % 16,
                    bytes: 64,
                })
                .collect();
            m.simulate_phase(&msgs)
        };
        assert_eq!(par_sweep(&configs, 1, f), par_sweep(&configs, 7, f));
    }

    #[test]
    fn empty_input() {
        let got: Vec<u64> = par_sweep(&Vec::<u64>::new(), 4, |&c| c);
        assert!(got.is_empty());
    }

    #[test]
    fn more_threads_than_work() {
        let configs = vec![1u64, 2];
        assert_eq!(par_sweep(&configs, 64, |&c| c + 1), vec![2, 3]);
    }
}
