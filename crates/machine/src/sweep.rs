//! Parallel parameter sweeps on the shared work-stealing pool
//! ([`crate::pool`]), plus the deterministic fault-schedule generators
//! the sweeps share.
//!
//! The benchmark harness evaluates many (machine, distribution, k, size)
//! configurations; each simulation is independent, so we shard them over
//! the pool's per-worker deques — results land in pre-sized slots, in
//! input order, bit-identical for every worker count. [`par_sweep_with`]
//! additionally gives every worker a private scratch state (e.g. a
//! [`crate::PhaseSim`]), so per-simulation allocations are paid once per
//! worker instead of once per configuration. The Monte Carlo drivers
//! ([`par_fault_sweep`], [`par_recovery_sweep`]) shard at plan×seed
//! granularity and refold the per-replication reports serially, so their
//! Welford statistics stay bit-identical to a serial run even though the
//! replications of one plan may run on different workers.

use crate::fault::{FaultPlan, FaultReport, NodeDeath};
use crate::mesh::Mesh2D;
use crate::model::PMsg;
use crate::overlap::SchedulePolicy;
use crate::phasesim::{CheckpointPolicy, FaultSim};
use crate::pool::{self, SweepReport};
use crate::rng::XorShift64;

/// A deterministic mean-time-to-failure death schedule: one death every
/// `mttf_ns` until `horizon_ns`, striking nodes in a seeded random
/// permutation (so repeated deaths never hit the same node), capped at
/// half the machine so a fold target always survives.
pub fn mttf_death_schedule(
    nodes: usize,
    mttf_ns: u64,
    horizon_ns: u64,
    seed: u64,
) -> Vec<NodeDeath> {
    let mut rng = XorShift64::new(seed);
    let mut order: Vec<usize> = (0..nodes).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let mttf_ns = mttf_ns.max(1);
    let mut deaths = Vec::new();
    let mut t = mttf_ns;
    while t < horizon_ns && deaths.len() < nodes / 2 {
        deaths.push(NodeDeath {
            node: order[deaths.len()],
            t,
        });
        t = t.saturating_add(mttf_ns);
    }
    deaths
}

/// Run `f` over every config on `threads` worker threads (chunked
/// statically), preserving input order in the output.
pub fn par_sweep<C, R, F>(configs: &[C], threads: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send + Default + Clone,
    F: Fn(&C) -> R + Sync,
{
    par_sweep_with(configs, threads, || (), |(), c| f(c))
}

/// Like [`par_sweep`], but each worker first builds a private scratch
/// state with `init` and threads it through every task it claims or
/// steals — the pattern used to amortize simulator allocations across a
/// sweep. Runs on the shared work-stealing pool; `threads` is clamped to
/// `[1, n]` (use [`par_sweep_with_report`] when the caller needs the
/// effective worker count back).
pub fn par_sweep_with<C, R, S, I, F>(configs: &[C], threads: usize, init: I, f: F) -> Vec<R>
where
    C: Sync,
    R: Send + Default + Clone,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &C) -> R + Sync,
{
    par_sweep_with_report(configs, threads, init, f).0
}

/// [`par_sweep_with`] plus the execution report: how many workers
/// actually ran (after clamping), the grain, and the steal count — so
/// benches compute efficiency against workers used, never requested.
pub fn par_sweep_with_report<C, R, S, I, F>(
    configs: &[C],
    threads: usize,
    init: I,
    f: F,
) -> (Vec<R>, SweepReport)
where
    C: Sync,
    R: Send + Default + Clone,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &C) -> R + Sync,
{
    pool::sweep(configs, threads, 0, init, f)
}

/// Seed of Monte Carlo replication `rep` for a plan whose own seed is
/// `base`. Replication 0 **is** the plan's seed, so the first
/// replication of any sweep reproduces the classic single-seed run bit
/// for bit; later replications are splitmix-scrambled so neighbouring
/// replications share no stream structure. Pure function of
/// `(base, rep)` — workers can derive any replication independently,
/// which is what makes parallel sweeps order-insensitive.
pub fn replication_seed(base: u64, rep: u64) -> u64 {
    if rep == 0 {
        return base;
    }
    let mut z = base.wrapping_add(rep.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Welford online accumulator: mean/variance plus min/max in O(1) space,
/// no sample storage. Pushing the same values in the same order always
/// produces bitwise-identical state, which is how parallel sweeps stay
/// bit-identical to serial ones.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    lo: f64,
    hi: f64,
}

impl OnlineStats {
    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            self.lo = x;
            self.hi = x;
        } else {
            self.lo = self.lo.min(x);
            self.hi = self.hi.max(x);
        }
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Samples folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0.0 below two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.lo
    }

    /// Largest sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.hi
    }
}

/// Per-configuration result of a Monte Carlo fault sweep: online
/// statistics over the replications plus the summed raw accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSweepStats {
    /// Replications folded in.
    pub replications: usize,
    /// Committed makespan per replication, in ns.
    pub makespan: OnlineStats,
    /// [`FaultReport::wall_clock_ns`] per replication (differs from
    /// `makespan` only on the recovery path).
    pub wall_clock: OnlineStats,
    /// [`FaultReport::delivered_fraction`] per replication.
    pub delivered: OnlineStats,
    /// Every replication's report summed ([`FaultReport::absorb`]) —
    /// total attempts, retries, black holes, rollbacks, … across the
    /// whole sample.
    pub total: FaultReport,
}

impl FaultSweepStats {
    /// Fold one replication's report in.
    pub fn push(&mut self, rep: &FaultReport) {
        self.replications += 1;
        self.makespan.push(rep.makespan as f64);
        self.wall_clock.push(rep.wall_clock_ns() as f64);
        self.delivered.push(rep.delivered_fraction());
        self.total.absorb(rep);
    }

    /// Mean makespan inflation over a healthy baseline.
    pub fn inflation(&self, healthy_ns: u64) -> f64 {
        self.makespan.mean() / healthy_ns.max(1) as f64
    }
}

/// Monte Carlo sweep over fault plans: for every plan, replay the phase
/// set under `replications` derived seeds ([`replication_seed`]) on the
/// compiled engine ([`FaultSim`]) and fold the reports into
/// [`FaultSweepStats`]. Work units are sharded at **plan×seed**
/// granularity over the shared work-stealing pool — each worker holds
/// one engine that is recompiled only when its claimed block crosses a
/// plan boundary ([`FaultSim::set_plan`]; the phase compilation is
/// reused) — and the per-replication reports are refolded serially in
/// `(plan, rep)` order, so the result is **bit-identical** whatever
/// `threads` is.
pub fn par_fault_sweep(
    mesh: &Mesh2D,
    phases: &[Vec<PMsg>],
    plans: &[FaultPlan],
    replications: usize,
    threads: usize,
    sched: SchedulePolicy,
) -> Vec<FaultSweepStats> {
    par_fault_sweep_report(mesh, phases, plans, replications, threads, sched).0
}

/// [`par_fault_sweep`] plus the pool's [`SweepReport`].
pub fn par_fault_sweep_report(
    mesh: &Mesh2D,
    phases: &[Vec<PMsg>],
    plans: &[FaultPlan],
    replications: usize,
    threads: usize,
    sched: SchedulePolicy,
) -> (Vec<FaultSweepStats>, SweepReport) {
    mc_sweep(
        plans,
        replications,
        threads,
        mesh,
        phases,
        |engine, seed| engine.run_faulty(seed, sched),
    )
}

/// [`par_fault_sweep`] for the checkpoint/rollback path: every
/// replication goes through [`FaultSim::run_recovering`] under `policy`
/// and `sched`.
pub fn par_recovery_sweep(
    mesh: &Mesh2D,
    phases: &[Vec<PMsg>],
    plans: &[FaultPlan],
    policy: &CheckpointPolicy,
    replications: usize,
    threads: usize,
    sched: SchedulePolicy,
) -> Vec<FaultSweepStats> {
    par_recovery_sweep_report(mesh, phases, plans, policy, replications, threads, sched).0
}

/// [`par_recovery_sweep`] plus the pool's [`SweepReport`].
pub fn par_recovery_sweep_report(
    mesh: &Mesh2D,
    phases: &[Vec<PMsg>],
    plans: &[FaultPlan],
    policy: &CheckpointPolicy,
    replications: usize,
    threads: usize,
    sched: SchedulePolicy,
) -> (Vec<FaultSweepStats>, SweepReport) {
    mc_sweep(
        plans,
        replications,
        threads,
        mesh,
        phases,
        |engine, seed| engine.run_recovering(policy, seed, sched),
    )
}

/// Shared Monte Carlo harness: shard `plans.len() × replications` work
/// units over the pool, one lazily-built [`FaultSim`] per worker,
/// re-planned only at plan boundaries; then refold the reports serially
/// so [`OnlineStats`] sees the exact push order of a serial run.
fn mc_sweep<E>(
    plans: &[FaultPlan],
    replications: usize,
    threads: usize,
    mesh: &Mesh2D,
    phases: &[Vec<PMsg>],
    eval: E,
) -> (Vec<FaultSweepStats>, SweepReport)
where
    E: Fn(&mut FaultSim, u64) -> FaultReport + Sync,
{
    if plans.is_empty() || replications == 0 {
        let report = SweepReport {
            requested: threads,
            workers: threads.clamp(1, plans.len().max(1)),
            ..SweepReport::default()
        };
        return (vec![FaultSweepStats::default(); plans.len()], report);
    }
    let tasks: Vec<u32> = (0..(plans.len() * replications) as u32).collect();
    let (reports, exec) = pool::sweep(
        &tasks,
        threads,
        0,
        || None::<(FaultSim, usize)>,
        |state, &t| {
            let (plan_idx, rep) = (t as usize / replications, t as usize % replications);
            let plan = &plans[plan_idx];
            let (engine, current) =
                state.get_or_insert_with(|| (FaultSim::new(mesh, phases, plan), plan_idx));
            if *current != plan_idx {
                engine.set_plan(plan);
                *current = plan_idx;
            }
            eval(engine, replication_seed(plan.seed, rep as u64))
        },
    );
    let mut stats = vec![FaultSweepStats::default(); plans.len()];
    for (t, report) in reports.iter().enumerate() {
        stats[t / replications].push(report);
    }
    (stats, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh2D;
    use crate::model::{CostModel, PMsg};
    use crate::phasesim::PhaseSim;

    #[test]
    fn preserves_order_and_values() {
        let configs: Vec<u64> = (0..100).collect();
        let got = par_sweep(&configs, 8, |&c| c * 2);
        let want: Vec<u64> = configs.iter().map(|c| c * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let configs: Vec<usize> = (1..20).collect();
        let f = |&n: &usize| {
            let m = Mesh2D::new(4, 4, CostModel::paragon());
            let msgs: Vec<PMsg> = (0..n)
                .map(|i| PMsg {
                    src: i % 16,
                    dst: (i * 7 + 3) % 16,
                    bytes: 64,
                })
                .collect();
            m.simulate_phase(&msgs)
        };
        assert_eq!(par_sweep(&configs, 1, f), par_sweep(&configs, 7, f));
    }

    #[test]
    fn empty_input() {
        let got: Vec<u64> = par_sweep(&Vec::<u64>::new(), 4, |&c| c);
        assert!(got.is_empty());
    }

    #[test]
    fn more_threads_than_work() {
        let configs = vec![1u64, 2];
        assert_eq!(par_sweep(&configs, 64, |&c| c + 1), vec![2, 3]);
    }

    #[test]
    fn mttf_schedule_is_deterministic_and_bounded() {
        let a = mttf_death_schedule(32, 10_000, 200_000, 0xfeed);
        let b = mttf_death_schedule(32, 10_000, 200_000, 0xfeed);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty());
        assert!(a.len() <= 16, "never kills more than half the machine");
        // Distinct nodes, strictly increasing strike times.
        for w in a.windows(2) {
            assert!(w[0].t < w[1].t);
        }
        let mut nodes: Vec<usize> = a.iter().map(|d| d.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), a.len());
        // A horizon shorter than the MTTF schedules nothing.
        assert!(mttf_death_schedule(32, 300_000, 200_000, 1).is_empty());
        // A zero MTTF is clamped instead of looping forever.
        assert_eq!(mttf_death_schedule(4, 0, 10, 1).len(), 2);
    }

    #[test]
    fn sweep_with_scratch_state_matches_plain() {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let phases: Vec<Vec<PMsg>> = (0..12)
            .map(|k| {
                (0..k + 1)
                    .map(|i| PMsg {
                        src: i % 32,
                        dst: (i * 5 + k) % 32,
                        bytes: 64 + k as u64,
                    })
                    .collect()
            })
            .collect();
        let plain = par_sweep(&phases, 3, |p| mesh.simulate_phase(p));
        let scratch = par_sweep_with(
            &phases,
            3,
            || PhaseSim::new(mesh.clone()),
            |sim, p| sim.simulate_phase(p),
        );
        assert_eq!(plain, scratch);
    }

    #[test]
    fn replication_seed_is_stable_and_spread() {
        assert_eq!(replication_seed(42, 0), 42, "replication 0 is the base");
        let a = replication_seed(42, 1);
        let b = replication_seed(42, 2);
        assert_ne!(a, b);
        assert_ne!(a, 42);
        assert_eq!(a, replication_seed(42, 1), "pure function");
        // Neighbouring bases at the same replication stay distinct.
        assert_ne!(replication_seed(42, 1), replication_seed(43, 1));
    }

    #[test]
    fn online_stats_match_two_pass() {
        let xs = [3.0f64, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::default();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert_eq!(s.count(), xs.len() as u64);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        let empty = OnlineStats::default();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
        let mut one = OnlineStats::default();
        one.push(7.0);
        assert_eq!(one.variance(), 0.0);
        assert_eq!((one.min(), one.max()), (7.0, 7.0));
    }

    #[test]
    fn fault_sweep_parallel_is_bit_identical_to_serial() {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let phases: Vec<Vec<PMsg>> = (0..4)
            .map(|k| {
                (0..20)
                    .map(|i| PMsg {
                        src: (i * 3 + k) % 32,
                        dst: (i * 11 + 5) % 32,
                        bytes: 64 + i as u64,
                    })
                    .collect()
            })
            .collect();
        let plans: Vec<FaultPlan> = [0.0, 0.2, 0.8]
            .iter()
            .enumerate()
            .map(|(i, &p)| FaultPlan::with_drop(40 + i as u64, p))
            .collect();
        let sched = SchedulePolicy::default();
        let serial = par_fault_sweep(&mesh, &phases, &plans, 6, 1, sched);
        for threads in [2, 3, 8] {
            assert_eq!(
                serial,
                par_fault_sweep(&mesh, &phases, &plans, 6, threads, sched),
                "threads = {threads}"
            );
        }
        // Replication 0 of each config is the plan's own seed: the sweep
        // brackets the classic single-seed run.
        let mut sim = PhaseSim::new(mesh.clone());
        for (plan, stats) in plans.iter().zip(&serial) {
            assert_eq!(stats.replications, 6);
            let classic = sim.simulate_phases_faulty(&phases, plan);
            assert!(stats.makespan.min() <= classic.makespan as f64);
            assert!(stats.makespan.max() >= classic.makespan as f64);
            assert_eq!(stats.total.messages, 6 * classic.messages);
        }
        assert!(serial[0].inflation(serial[0].makespan.mean() as u64) > 0.9);
    }

    #[test]
    fn recovery_sweep_parallel_is_bit_identical_to_serial() {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let phases: Vec<Vec<PMsg>> = (0..8)
            .map(|k| {
                (0..12)
                    .map(|i| PMsg {
                        src: (i * 7 + k) % 32,
                        dst: (i * 5 + 1) % 32,
                        bytes: 100,
                    })
                    .collect()
            })
            .collect();
        let healthy = mesh.simulate_phases(&phases);
        let plans: Vec<FaultPlan> = (0..2)
            .map(|i| FaultPlan {
                seed: 9 + i,
                node_deaths: mttf_death_schedule(32, healthy / 3, healthy, 77 + i),
                detection_latency: 5_000,
                ..FaultPlan::none()
            })
            .collect();
        let policy = CheckpointPolicy::default();
        let sched = SchedulePolicy::default();
        let serial = par_recovery_sweep(&mesh, &phases, &plans, &policy, 4, 1, sched);
        assert_eq!(
            serial,
            par_recovery_sweep(&mesh, &phases, &plans, &policy, 4, 4, sched)
        );
        for stats in &serial {
            assert_eq!(stats.replications, 4);
            assert_eq!(stats.total.delivered, stats.total.messages);
            assert!(stats.total.recovery.all_recovered());
            assert!(stats.wall_clock.mean() >= stats.makespan.mean());
        }
    }
}
