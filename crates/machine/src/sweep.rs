//! Parallel parameter sweeps with std scoped threads, plus the
//! deterministic fault-schedule generators the sweeps share.
//!
//! The benchmark harness evaluates many (machine, distribution, k, size)
//! configurations; each simulation is independent, so we fan them out over
//! the available cores with `std::thread::scope` — no `'static` bounds, no
//! locks, results returned in input order. [`par_sweep_with`] additionally
//! gives every worker a private scratch state (e.g. a
//! [`crate::PhaseSim`]), so per-simulation allocations are paid once per
//! thread instead of once per configuration.

use crate::fault::NodeDeath;
use crate::rng::XorShift64;

/// A deterministic mean-time-to-failure death schedule: one death every
/// `mttf_ns` until `horizon_ns`, striking nodes in a seeded random
/// permutation (so repeated deaths never hit the same node), capped at
/// half the machine so a fold target always survives.
pub fn mttf_death_schedule(
    nodes: usize,
    mttf_ns: u64,
    horizon_ns: u64,
    seed: u64,
) -> Vec<NodeDeath> {
    let mut rng = XorShift64::new(seed);
    let mut order: Vec<usize> = (0..nodes).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let mttf_ns = mttf_ns.max(1);
    let mut deaths = Vec::new();
    let mut t = mttf_ns;
    while t < horizon_ns && deaths.len() < nodes / 2 {
        deaths.push(NodeDeath {
            node: order[deaths.len()],
            t,
        });
        t = t.saturating_add(mttf_ns);
    }
    deaths
}

/// Run `f` over every config on `threads` worker threads (chunked
/// statically), preserving input order in the output.
pub fn par_sweep<C, R, F>(configs: &[C], threads: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send + Default + Clone,
    F: Fn(&C) -> R + Sync,
{
    par_sweep_with(configs, threads, || (), |(), c| f(c))
}

/// Like [`par_sweep`], but each worker thread first builds a private
/// scratch state with `init` and threads it through its chunk — the
/// pattern used to amortize simulator allocations across a sweep.
pub fn par_sweep_with<C, R, S, I, F>(configs: &[C], threads: usize, init: I, f: F) -> Vec<R>
where
    C: Sync,
    R: Send + Default + Clone,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &C) -> R + Sync,
{
    let n = configs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let mut results = vec![R::default(); n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (slot, work) in results.chunks_mut(chunk).zip(configs.chunks(chunk)) {
            let f = &f;
            let init = &init;
            scope.spawn(move || {
                let mut state = init();
                for (out, cfg) in slot.iter_mut().zip(work) {
                    *out = f(&mut state, cfg);
                }
            });
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh2D;
    use crate::model::{CostModel, PMsg};
    use crate::phasesim::PhaseSim;

    #[test]
    fn preserves_order_and_values() {
        let configs: Vec<u64> = (0..100).collect();
        let got = par_sweep(&configs, 8, |&c| c * 2);
        let want: Vec<u64> = configs.iter().map(|c| c * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let configs: Vec<usize> = (1..20).collect();
        let f = |&n: &usize| {
            let m = Mesh2D::new(4, 4, CostModel::paragon());
            let msgs: Vec<PMsg> = (0..n)
                .map(|i| PMsg {
                    src: i % 16,
                    dst: (i * 7 + 3) % 16,
                    bytes: 64,
                })
                .collect();
            m.simulate_phase(&msgs)
        };
        assert_eq!(par_sweep(&configs, 1, f), par_sweep(&configs, 7, f));
    }

    #[test]
    fn empty_input() {
        let got: Vec<u64> = par_sweep(&Vec::<u64>::new(), 4, |&c| c);
        assert!(got.is_empty());
    }

    #[test]
    fn more_threads_than_work() {
        let configs = vec![1u64, 2];
        assert_eq!(par_sweep(&configs, 64, |&c| c + 1), vec![2, 3]);
    }

    #[test]
    fn mttf_schedule_is_deterministic_and_bounded() {
        let a = mttf_death_schedule(32, 10_000, 200_000, 0xfeed);
        let b = mttf_death_schedule(32, 10_000, 200_000, 0xfeed);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty());
        assert!(a.len() <= 16, "never kills more than half the machine");
        // Distinct nodes, strictly increasing strike times.
        for w in a.windows(2) {
            assert!(w[0].t < w[1].t);
        }
        let mut nodes: Vec<usize> = a.iter().map(|d| d.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), a.len());
        // A horizon shorter than the MTTF schedules nothing.
        assert!(mttf_death_schedule(32, 300_000, 200_000, 1).is_empty());
        // A zero MTTF is clamped instead of looping forever.
        assert_eq!(mttf_death_schedule(4, 0, 10, 1).len(), 2);
    }

    #[test]
    fn sweep_with_scratch_state_matches_plain() {
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let phases: Vec<Vec<PMsg>> = (0..12)
            .map(|k| {
                (0..k + 1)
                    .map(|i| PMsg {
                        src: i % 32,
                        dst: (i * 5 + k) % 32,
                        bytes: 64 + k as u64,
                    })
                    .collect()
            })
            .collect();
        let plain = par_sweep(&phases, 3, |p| mesh.simulate_phase(p));
        let scratch = par_sweep_with(
            &phases,
            3,
            || PhaseSim::new(mesh.clone()),
            |sim, p| sim.simulate_phase(p),
        );
        assert_eq!(plain, scratch);
    }
}
