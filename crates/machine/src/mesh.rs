//! A `P×Q` wormhole 2-D mesh with XY routing and per-link serialization —
//! the Paragon-like substrate for Table 2 and Figure 8.
//!
//! Contention model: a wormhole message reserves **every link of its
//! route** for its whole transfer time (head-of-line blocking collapses
//! the pipeline to this approximation); two messages sharing any link
//! serialize. A communication phase is scheduled greedily: messages are
//! processed in deterministic order, each starting as soon as all its
//! links are free. The phase *makespan* is what the benchmarks report —
//! exactly the quantity the paper measures when it times one
//! communication pattern.

use crate::model::{CostModel, PMsg};

/// A 2-D mesh of `px × py` nodes.
///
/// ```
/// use rescomm_machine::{CostModel, Mesh2D, PMsg};
/// let mesh = Mesh2D::new(8, 4, CostModel::paragon());
/// // Two messages forced through one link serialize:
/// let a = PMsg { src: 0, dst: 3, bytes: 64 };
/// let b = PMsg { src: 1, dst: 2, bytes: 64 };
/// let both = mesh.simulate_phase(&[a, b]);
/// assert_eq!(both, mesh.simulate_phase(&[a]) + mesh.simulate_phase(&[b]));
/// ```
#[derive(Debug, Clone)]
pub struct Mesh2D {
    /// Nodes along X.
    pub px: usize,
    /// Nodes along Y.
    pub py: usize,
    /// The cost model.
    pub cost: CostModel,
}

/// Directed link identifier inside the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(usize);

impl LinkId {
    /// Dense index of the link (for utilization tables).
    pub fn index(&self) -> usize {
        self.0
    }
}

#[inline]
fn h_link_id(px: usize, x: usize, y: usize, positive: bool) -> usize {
    (y * (px - 1) + x) * 2 + usize::from(positive)
}

#[inline]
fn v_link_id(px: usize, py: usize, x: usize, y: usize, positive: bool) -> usize {
    2 * (px - 1) * py + (x * (py - 1) + y) * 2 + usize::from(positive)
}

/// Allocation-free iterator over the directed links of a dimension-order
/// route (see [`Mesh2D::route_links`] and [`Mesh2D::route_links_yx`]).
/// Owns plain coordinates, so it borrows nothing and can be re-created
/// cheaply for the two passes a greedy scheduler needs (reserve scan,
/// then commit scan).
#[derive(Debug, Clone)]
pub struct RouteLinks {
    px: usize,
    py: usize,
    x: usize,
    y: usize,
    tx: usize,
    ty: usize,
    /// Route Y before X (the fault-avoidance alternative to XY).
    yx: bool,
}

impl RouteLinks {
    #[inline]
    fn step_x(&mut self) -> LinkId {
        if self.x < self.tx {
            let l = h_link_id(self.px, self.x, self.y, true);
            self.x += 1;
            LinkId(l)
        } else {
            self.x -= 1;
            LinkId(h_link_id(self.px, self.x, self.y, false))
        }
    }

    #[inline]
    fn step_y(&mut self) -> LinkId {
        if self.y < self.ty {
            let l = v_link_id(self.px, self.py, self.x, self.y, true);
            self.y += 1;
            LinkId(l)
        } else {
            self.y -= 1;
            LinkId(v_link_id(self.px, self.py, self.x, self.y, false))
        }
    }
}

impl Iterator for RouteLinks {
    type Item = LinkId;

    #[inline]
    fn next(&mut self) -> Option<LinkId> {
        if self.yx {
            if self.y != self.ty {
                Some(self.step_y())
            } else if self.x != self.tx {
                Some(self.step_x())
            } else {
                None
            }
        } else if self.x != self.tx {
            Some(self.step_x())
        } else if self.y != self.ty {
            Some(self.step_y())
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.x.abs_diff(self.tx) + self.y.abs_diff(self.ty);
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteLinks {}

impl Mesh2D {
    /// Build a mesh.
    pub fn new(px: usize, py: usize, cost: CostModel) -> Self {
        assert!(px > 0 && py > 0);
        Mesh2D { px, py, cost }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.px * self.py
    }

    /// Flatten `(x, y)` to a node id.
    pub fn node_id(&self, x: usize, y: usize) -> usize {
        assert!(x < self.px && y < self.py, "node ({x},{y}) out of mesh");
        y * self.px + x
    }

    /// Unflatten a node id.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        assert!(id < self.nodes());
        (id % self.px, id / self.px)
    }

    /// Number of directed links (2 per adjacent pair).
    pub fn link_count(&self) -> usize {
        // Horizontal: (px−1)·py pairs; vertical: px·(py−1) pairs; ×2.
        2 * ((self.px - 1) * self.py + self.px * (self.py - 1))
    }

    /// Directed link between `(x,y)` and `(x+1,y)` (`positive` = rightward).
    pub fn h_link(&self, x: usize, y: usize, positive: bool) -> LinkId {
        // Link between (x,y) and (x+1,y): the right endpoint must exist.
        debug_assert!(x + 1 < self.px);
        LinkId(h_link_id(self.px, x, y, positive))
    }

    /// Directed link between `(x,y)` and `(x,y+1)` (`positive` = upward).
    pub fn v_link(&self, x: usize, y: usize, positive: bool) -> LinkId {
        // Link between (x,y) and (x,y+1): the upper endpoint must exist.
        debug_assert!(y + 1 < self.py);
        LinkId(v_link_id(self.px, self.py, x, y, positive))
    }

    /// XY route between two nodes: X first, then Y; returns directed links.
    pub fn route(&self, src: usize, dst: usize) -> Vec<LinkId> {
        self.route_links(src, dst).collect()
    }

    /// Allocation-free XY route: an iterator over the directed links
    /// between two nodes (X first, then Y). This is the hot-path form
    /// [`crate::PhaseSim`] uses; [`Mesh2D::route`] is its collected twin.
    pub fn route_links(&self, src: usize, dst: usize) -> RouteLinks {
        let (x, y) = self.coords(src);
        let (tx, ty) = self.coords(dst);
        RouteLinks {
            px: self.px,
            py: self.py,
            x,
            y,
            tx,
            ty,
            yx: false,
        }
    }

    /// The YX alternative to [`Mesh2D::route_links`]: Y first, then X.
    /// Same hop count, but (for src/dst differing in both dimensions) a
    /// disjoint set of intermediate links — the fault scheduler uses it
    /// to route around a dead link on the XY path.
    pub fn route_links_yx(&self, src: usize, dst: usize) -> RouteLinks {
        let mut r = self.route_links(src, dst);
        r.yx = true;
        r
    }

    /// Hop count of the XY route.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        let (x, y) = self.coords(src);
        let (tx, ty) = self.coords(dst);
        x.abs_diff(tx) + y.abs_diff(ty)
    }

    /// Simulate one communication phase: all messages available at t = 0,
    /// greedy whole-route reservation in deterministic (sorted) order.
    /// Returns the makespan in nanoseconds (0 for an empty phase).
    pub fn simulate_phase(&self, msgs: &[PMsg]) -> u64 {
        let mut link_free = vec![0u64; self.link_count()];
        let mut msgs: Vec<PMsg> = msgs.iter().copied().filter(|m| m.src != m.dst).collect();
        msgs.sort();
        let mut makespan = 0u64;
        for m in &msgs {
            let route = self.route(m.src, m.dst);
            let dur = self.cost.p2p(route.len(), m.bytes);
            let start = route.iter().map(|l| link_free[l.0]).max().unwrap_or(0);
            let end = start + dur;
            for l in &route {
                link_free[l.0] = end;
            }
            makespan = makespan.max(end);
        }
        makespan
    }

    /// Simulate a sequence of dependent phases (each starts after the
    /// previous completes) and return the total time.
    pub fn simulate_phases(&self, phases: &[Vec<PMsg>]) -> u64 {
        phases.iter().map(|p| self.simulate_phase(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(px: usize, py: usize) -> Mesh2D {
        Mesh2D::new(px, py, CostModel::paragon())
    }

    #[test]
    fn routes_are_xy_and_hop_counts_match() {
        let m = mesh(4, 4);
        let a = m.node_id(0, 0);
        let b = m.node_id(3, 2);
        let r = m.route(a, b);
        assert_eq!(r.len(), 5);
        assert_eq!(m.hops(a, b), 5);
        // Reverse direction uses different (opposite) links.
        let r2 = m.route(b, a);
        assert_eq!(r2.len(), 5);
        assert!(
            r.iter().all(|l| !r2.contains(l)),
            "directed links must differ"
        );
    }

    #[test]
    fn route_links_iterator_matches_collected_route() {
        let m = mesh(4, 3);
        for src in 0..m.nodes() {
            for dst in 0..m.nodes() {
                let collected = m.route(src, dst);
                let streamed: Vec<LinkId> = m.route_links(src, dst).collect();
                assert_eq!(collected, streamed);
                assert_eq!(m.route_links(src, dst).len(), m.hops(src, dst));
            }
        }
    }

    #[test]
    fn yx_route_same_hops_disjoint_interior() {
        let m = mesh(4, 4);
        let a = m.node_id(0, 0);
        let b = m.node_id(3, 2);
        let xy: Vec<LinkId> = m.route_links(a, b).collect();
        let yx: Vec<LinkId> = m.route_links_yx(a, b).collect();
        assert_eq!(xy.len(), yx.len());
        assert_eq!(m.route_links_yx(a, b).len(), m.hops(a, b));
        // XY goes right along y=0; YX goes up along x=0: no shared links.
        assert!(xy.iter().all(|l| !yx.contains(l)));
        // YX starts with a vertical link, XY with a horizontal one.
        assert_eq!(yx[0], m.v_link(0, 0, true));
        assert_eq!(xy[0], m.h_link(0, 0, true));
    }

    #[test]
    fn yx_route_degenerates_to_xy_on_straight_lines() {
        let m = mesh(4, 4);
        for (a, b) in [(0, 3), (0, 12), (5, 5)] {
            let xy: Vec<LinkId> = m.route_links(a, b).collect();
            let yx: Vec<LinkId> = m.route_links_yx(a, b).collect();
            assert_eq!(xy, yx, "single-dimension routes must coincide");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn h_link_rejects_rightmost_column() {
        // x = px − 1 has no rightward neighbour: the bounds check must
        // fire instead of silently aliasing another link.
        mesh(4, 4).h_link(3, 0, true);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn v_link_rejects_topmost_row() {
        mesh(4, 4).v_link(0, 3, true);
    }

    #[test]
    fn empty_phase_is_free() {
        assert_eq!(mesh(4, 4).simulate_phase(&[]), 0);
        // Local messages are free too.
        let m = mesh(4, 4);
        assert_eq!(
            m.simulate_phase(&[PMsg {
                src: 5,
                dst: 5,
                bytes: 100
            }]),
            0
        );
    }

    #[test]
    fn single_message_time_is_p2p() {
        let m = mesh(4, 4);
        let t = m.simulate_phase(&[PMsg {
            src: 0,
            dst: 1,
            bytes: 64,
        }]);
        assert_eq!(t, m.cost.p2p(1, 64));
    }

    #[test]
    fn disjoint_messages_run_in_parallel() {
        let m = mesh(4, 4);
        let a = PMsg {
            src: m.node_id(0, 0),
            dst: m.node_id(1, 0),
            bytes: 64,
        };
        let b = PMsg {
            src: m.node_id(0, 2),
            dst: m.node_id(1, 2),
            bytes: 64,
        };
        let t2 = m.simulate_phase(&[a, b]);
        let t1 = m.simulate_phase(&[a]);
        assert_eq!(t2, t1, "disjoint routes must not serialize");
    }

    #[test]
    fn shared_link_serializes() {
        let m = mesh(4, 1);
        // Two messages crossing the same middle link.
        let a = PMsg {
            src: 0,
            dst: 3,
            bytes: 64,
        };
        let b = PMsg {
            src: 1,
            dst: 2,
            bytes: 64,
        };
        let t = m.simulate_phase(&[a, b]);
        let ta = m.simulate_phase(&[a]);
        let tb = m.simulate_phase(&[b]);
        assert_eq!(t, ta + tb, "shared link must serialize");
    }

    #[test]
    fn makespan_monotone_in_bytes() {
        let m = mesh(4, 4);
        let small: Vec<PMsg> = (0..8)
            .map(|i| PMsg {
                src: i,
                dst: 15 - i,
                bytes: 16,
            })
            .collect();
        let big: Vec<PMsg> = small.iter().map(|m| PMsg { bytes: 1024, ..*m }).collect();
        assert!(m.simulate_phase(&big) > m.simulate_phase(&small));
    }

    #[test]
    fn makespan_monotone_in_message_count() {
        let m = mesh(4, 4);
        let msgs: Vec<PMsg> = (0..12)
            .map(|i| PMsg {
                src: i,
                dst: (i + 5) % 16,
                bytes: 128,
            })
            .collect();
        let t_half = m.simulate_phase(&msgs[..6]);
        let t_full = m.simulate_phase(&msgs);
        assert!(t_full >= t_half);
    }

    #[test]
    fn contention_free_lower_bound() {
        let m = mesh(8, 8);
        let msgs: Vec<PMsg> = (0..32)
            .map(|i| PMsg {
                src: i,
                dst: 63 - i,
                bytes: 256,
            })
            .collect();
        let t = m.simulate_phase(&msgs);
        let lb = msgs
            .iter()
            .map(|mm| m.cost.p2p(m.hops(mm.src, mm.dst), mm.bytes))
            .max()
            .unwrap();
        assert!(t >= lb, "makespan below contention-free bound");
    }

    #[test]
    fn phases_accumulate() {
        let m = mesh(4, 1);
        let p1 = vec![PMsg {
            src: 0,
            dst: 1,
            bytes: 64,
        }];
        let p2 = vec![PMsg {
            src: 2,
            dst: 3,
            bytes: 64,
        }];
        assert_eq!(
            m.simulate_phases(&[p1.clone(), p2.clone()]),
            m.simulate_phase(&p1) + m.simulate_phase(&p2)
        );
    }

    #[test]
    fn degenerate_1x1_mesh() {
        let m = mesh(1, 1);
        assert_eq!(m.simulate_phase(&[]), 0);
        assert_eq!(m.nodes(), 1);
    }
}
