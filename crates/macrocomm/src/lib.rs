//! # rescomm-macrocomm — detecting and shaping macro-communications
//!
//! Section 3 of the paper: residual communications that fit a *collective*
//! pattern — broadcast, scatter, gather, reduction — are an order of
//! magnitude cheaper than general affine communications on machines with
//! collective support (Table 1: CM-5 control network). This crate holds the
//! formal detection conditions, all phrased as kernel comparisons, plus the
//! Hermite-based rotation that makes a partial broadcast *axis-parallel*
//! (required for the efficient implementation, following Platonoff) and the
//! message-vectorization test of §3.5.
//!
//! The functions here are pure linear algebra over the allocation and
//! access matrices; wiring them to a concrete [`rescomm_loopnest`] nest is
//! done by the pipeline crate.

pub mod detect;
pub mod rotate;
pub mod vectorize;

pub use detect::{detect, Extent, MacroComm, MacroInput, MacroKind};
pub use rotate::{axis_alignment_rotation, is_axis_confined};
pub use vectorize::vectorizable;
