//! Making partial collectives axis-parallel (§3.1, "Partial broadcast
//! conditions").
//!
//! A partial broadcast along directions `D = [M_S v₁ … M_S v_p]` is only
//! implemented efficiently when the directions live in a coordinate
//! subspace of the grid — `D = [D₁; 0]` up to a row permutation. When they
//! do not, the paper decomposes `D = Q·[H; 0]` (right Hermite form) and
//! left-multiplies every allocation matrix of the connected component by
//! `Q⁻¹`, which rotates the broadcast onto the first `rank D` axes without
//! disturbing any local communication.

use rescomm_intlin::{right_hermite, IMat};

/// `true` iff the nonzero rows of `D` number at most `rank D` — i.e. the
/// directions are confined to `rank D` grid axes (the efficiency condition
/// for a partial collective).
pub fn is_axis_confined(d: &IMat) -> bool {
    let nonzero_rows = (0..d.rows())
        .filter(|&i| d.row(i).iter().any(|&x| x != 0))
        .count();
    nonzero_rows <= d.rank()
}

/// Compute the unimodular rotation `Q⁻¹` that confines the directions of
/// `d` to the first `rank d` grid axes: `Q⁻¹·d = [H; 0]`.
///
/// Returns `(q_inv, rank)`. Left-multiplying every allocation of the
/// component by `q_inv` makes the collective axis-parallel.
pub fn axis_alignment_rotation(d: &IMat) -> (IMat, usize) {
    let hf = right_hermite(d);
    let q_inv =
        hf.q.inverse_unimodular()
            .expect("Hermite cofactor must be unimodular");
    (q_inv, hf.rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn axis_confined_cases() {
        // Single direction along an axis.
        assert!(is_axis_confined(&IMat::col_vec(&[0, 3])));
        assert!(is_axis_confined(&IMat::col_vec(&[2, 0])));
        // Diagonal direction: touches two axes with rank 1.
        assert!(!is_axis_confined(&IMat::col_vec(&[1, -1])));
        // Two directions spanning two axes: confined (rank 2, 2 rows).
        assert!(is_axis_confined(&m(&[&[1, 1], &[0, 1]])));
        // Two parallel diagonal directions: rank 1, 2 nonzero rows.
        assert!(!is_axis_confined(&m(&[&[1, 2], &[-1, -2]])));
        // Zero matrix: trivially confined.
        assert!(is_axis_confined(&IMat::zeros(2, 1)));
    }

    #[test]
    fn rotation_confines_single_direction() {
        // The motivating example: D = (1, −1)ᵗ.
        let d = IMat::col_vec(&[1, -1]);
        let (qinv, r) = axis_alignment_rotation(&d);
        assert_eq!(r, 1);
        let rotated = &qinv * &d;
        assert!(is_axis_confined(&rotated), "rotated: {rotated:?}");
        // Confined to the FIRST axis: second row zero.
        assert_eq!(rotated[(1, 0)], 0);
        assert_ne!(rotated[(0, 0)], 0);
    }

    #[test]
    fn rotation_confines_collapsing_pair() {
        // The "lucky coincidence": two directions on the same line.
        let d = m(&[&[1, 1], &[-1, -1]]);
        let (qinv, r) = axis_alignment_rotation(&d);
        assert_eq!(r, 1);
        let rotated = &qinv * &d;
        assert!(is_axis_confined(&rotated));
        assert_eq!(rotated.row(1), &[0, 0]);
    }

    #[test]
    fn rotation_on_3d_grid() {
        let d = IMat::col_vec(&[2, 3, 5]);
        let (qinv, r) = axis_alignment_rotation(&d);
        assert_eq!(r, 1);
        let rotated = &qinv * &d;
        assert_eq!(rotated[(1, 0)], 0);
        assert_eq!(rotated[(2, 0)], 0);
        // gcd preserved: the direction is primitive, so the pivot is ±1.
        assert_eq!(rotated[(0, 0)].abs(), 1);
    }

    #[test]
    fn rotation_is_unimodular_and_invertible() {
        let d = m(&[&[3, 1], &[1, 1], &[2, 2]]);
        let (qinv, r) = axis_alignment_rotation(&d);
        assert!(rescomm_intlin::is_unimodular(&qinv));
        assert_eq!(r, 2);
        let rotated = &qinv * &d;
        // All rows past the rank are zero.
        for i in r..3 {
            assert!(rotated.row(i).iter().all(|&x| x == 0));
        }
    }
}
