//! Macro-communication detection (§3.1–§3.4 of the paper).
//!
//! For an access `x[F·I + c]` in statement `S` with schedule `θ`,
//! allocations `M_S`, `M_x`, the four patterns are characterized by which
//! kernel the iteration difference `I′ − I` must inhabit and which maps
//! must *not* kill it:
//!
//! | pattern   | `I′−I ∈`                 | must escape            |
//! |-----------|--------------------------|------------------------|
//! | broadcast | `ker θ ∩ ker F`          | `ker M_S`              |
//! | scatter   | `ker θ ∩ ker (M_x·F)`    | `ker M_S` and `ker F`  |
//! | gather    | `ker θ ∩ ker (M_x·F)`    | `ker M_S` and `ker F`  |
//! | reduction | `ker θ ∩ ker M_S`        | `ker (M_x·F)`          |
//!
//! (Scatter = read side, gather = write side of the same geometry;
//! a reduction needs the statement to be an accumulation.)
//!
//! The *extent* of the collective follows from the image of the kernel
//! under `M_S` (or `M_x·F` for reductions): rank ≥ m ⇒ total, 0 < rank < m
//! ⇒ partial along the image directions, rank 0 ⇒ hidden by the mapping.

use rescomm_intlin::{kernel_intersection, IMat};
use rescomm_loopnest::AccessKind;

/// Which collective pattern was recognized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacroKind {
    /// Same element read by several processors at one timestep.
    Broadcast,
    /// Different elements of one owner sent to several processors.
    Scatter,
    /// Different elements produced by several processors stored by one.
    Gather,
    /// Values from several processors folded into one accumulation.
    Reduction,
}

/// Spatial extent of the collective on the `m`-dimensional grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extent {
    /// Covers the whole grid (direction rank ≥ m).
    Total,
    /// Covers an `r`-dimensional sub-grid, `0 < r < m`.
    Partial {
        /// Rank of the direction matrix.
        r: usize,
    },
    /// The mapping collapses the pattern: plain point-to-point.
    Hidden,
}

/// A detected macro-communication.
#[derive(Debug, Clone)]
pub struct MacroComm {
    /// The recognized pattern.
    pub kind: MacroKind,
    /// Total / partial / hidden.
    pub extent: Extent,
    /// Direction matrix `D` (m×p): images of the kernel generators on the
    /// grid (`None` when hidden).
    pub directions: Option<IMat>,
    /// `true` iff `D` is confined to `rank D` grid axes — the efficiency
    /// condition for partial collectives (§3.1). Total and hidden extents
    /// report `true`.
    pub axis_parallel: bool,
}

/// Inputs to the detector for one access.
#[derive(Debug, Clone, Copy)]
pub struct MacroInput<'a> {
    /// Statement schedule matrix `θ` (s×d).
    pub theta: &'a IMat,
    /// Access matrix `F` (q×d).
    pub f: &'a IMat,
    /// Statement allocation `M_S` (m×d).
    pub m_s: &'a IMat,
    /// Array allocation `M_x` (m×q).
    pub m_x: &'a IMat,
    /// Read/write/reduce.
    pub kind: AccessKind,
    /// `true` iff the statement accumulates into some array
    /// (associative-commutative update) — gate for reductions.
    pub stmt_is_reduction: bool,
}

/// Rank of `M·K` where `K` collects kernel generators as columns.
fn image_rank(m: &IMat, k: &IMat) -> (IMat, usize) {
    let d = m * k;
    let r = d.rank();
    (d, r)
}

fn classify(m_dim: usize, d: IMat, r: usize) -> MacroComm_ {
    if r == 0 {
        MacroComm_ {
            extent: Extent::Hidden,
            directions: None,
            axis_parallel: true,
        }
    } else if r >= m_dim {
        MacroComm_ {
            extent: Extent::Total,
            directions: Some(d),
            axis_parallel: true,
        }
    } else {
        let axis = crate::rotate::is_axis_confined(&d);
        MacroComm_ {
            extent: Extent::Partial { r },
            directions: Some(d),
            axis_parallel: axis,
        }
    }
}

struct MacroComm_ {
    extent: Extent,
    directions: Option<IMat>,
    axis_parallel: bool,
}

/// Detect the best macro-communication pattern for one access, if any.
///
/// Preference order (cheapest first on the paper's Table 1): reduction,
/// broadcast, then scatter/gather. A `Hidden` extent is only returned when
/// the geometric pattern exists but the mapping collapses it; accesses
/// with no collective structure at all return `None`.
pub fn detect(input: MacroInput<'_>) -> Option<MacroComm> {
    let m_dim = input.m_s.rows();
    let mxf = input.m_x * input.f;

    // Reduction: statement accumulates, values come from different source
    // processors while the computing processor repeats.
    if input.stmt_is_reduction && input.kind == AccessKind::Read {
        if let Some(k) = kernel_intersection(&[input.theta, input.m_s]) {
            let (d, r) = image_rank(&mxf, &k);
            if r > 0 {
                let c = classify(m_dim, d, r);
                return Some(MacroComm {
                    kind: MacroKind::Reduction,
                    extent: c.extent,
                    directions: c.directions,
                    axis_parallel: c.axis_parallel,
                });
            }
        }
    }

    // Broadcast: same element, several destinations (read access).
    if input.kind == AccessKind::Read {
        if let Some(k) = kernel_intersection(&[input.theta, input.f]) {
            let (d, r) = image_rank(input.m_s, &k);
            let c = classify(m_dim, d, r);
            return Some(MacroComm {
                kind: MacroKind::Broadcast,
                extent: c.extent,
                directions: c.directions,
                axis_parallel: c.axis_parallel,
            });
        }
    }

    // Scatter / gather: same owner processor, several elements, several
    // counterpart processors.
    if let Some(k) = kernel_intersection(&[input.theta, &mxf]) {
        // Need directions that move the statement processor AND the
        // element: restrict to generators escaping both kernels. We work
        // with the whole kernel and require both image ranks positive —
        // exactness of the basis makes this equivalent for detection.
        let (d_s, r_s) = image_rank(input.m_s, &k);
        let (_d_f, r_f) = image_rank(input.f, &k);
        if r_s > 0 && r_f > 0 {
            let kind = match input.kind {
                AccessKind::Read => MacroKind::Scatter,
                AccessKind::Write | AccessKind::Reduce => MacroKind::Gather,
            };
            let c = classify(m_dim, d_s, r_s);
            return Some(MacroComm {
                kind,
                extent: c.extent,
                directions: c.directions,
                axis_parallel: c.axis_parallel,
            });
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_intlin::IMat;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    /// The motivating example's F6 after alignment: θ parallel (zero row),
    /// F6 = [[1,1,0],[0,1,1]], M_S2 = [[1,0,0],[0,1,0]], M_a = Id2.
    #[test]
    fn f6_is_partial_broadcast_not_axis_parallel() {
        let theta = IMat::zeros(1, 3);
        let f = m(&[&[1, 1, 0], &[0, 1, 1]]);
        let m_s = m(&[&[1, 0, 0], &[0, 1, 0]]);
        let m_x = IMat::identity(2);
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        })
        .expect("F6 must be a broadcast");
        assert_eq!(got.kind, MacroKind::Broadcast);
        assert_eq!(got.extent, Extent::Partial { r: 1 });
        // Direction = M_S·(1,−1,1)ᵗ = ±(1,−1): not axis-parallel.
        assert!(!got.axis_parallel);
        let d = got.directions.unwrap();
        assert_eq!(d.cols(), 1);
        assert_eq!(d[(0, 0)].abs(), 1);
        assert_eq!(d[(1, 0)], -d[(0, 0)]);
    }

    /// After rotating by V = [[1,1],[0,1]], the same broadcast is parallel
    /// to the second grid axis.
    #[test]
    fn f6_rotated_becomes_axis_parallel() {
        let v = m(&[&[1, 1], &[0, 1]]);
        let theta = IMat::zeros(1, 3);
        let f = m(&[&[1, 1, 0], &[0, 1, 1]]);
        let m_s = &v * &m(&[&[1, 0, 0], &[0, 1, 0]]);
        let m_x = &v * &IMat::identity(2);
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        })
        .unwrap();
        assert_eq!(got.extent, Extent::Partial { r: 1 });
        assert!(got.axis_parallel, "directions: {:?}", got.directions);
    }

    /// The rank-deficient F8 = [[1,1,1],[-1,-1,-1]] with
    /// M_S3 = [[1,0,-1],[0,1,2]]: after the same rotation both kernel
    /// directions collapse onto one axis (the "lucky coincidence").
    #[test]
    fn f8_lucky_coincidence() {
        let theta = IMat::zeros(1, 3);
        let f = m(&[&[1, 1, 1], &[-1, -1, -1]]);
        let m_s = m(&[&[1, 0, -1], &[0, 1, 2]]);
        let m_x = IMat::identity(2);
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        })
        .unwrap();
        assert_eq!(got.kind, MacroKind::Broadcast);
        assert_eq!(got.extent, Extent::Partial { r: 1 });
        assert!(!got.axis_parallel, "pre-rotation D is (±1,∓1)-like");

        let v = m(&[&[1, 1], &[0, 1]]);
        let m_s2 = &v * &m_s;
        let m_x2 = &v * &m_x;
        let got2 = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s2,
            m_x: &m_x2,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        })
        .unwrap();
        assert!(got2.axis_parallel, "D after V: {:?}", got2.directions);
    }

    /// Example 2: r[i,j] = f(a[i]) on a 2-D grid with M_S = Id: the a-read
    /// broadcasts along the j axis (already axis-parallel).
    #[test]
    fn example2_total_grid_broadcast() {
        let theta = IMat::zeros(1, 2);
        let f = m(&[&[1, 0]]);
        let m_s = IMat::identity(2);
        let m_x = IMat::identity(1);
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        })
        .unwrap();
        assert_eq!(got.kind, MacroKind::Broadcast);
        assert_eq!(got.extent, Extent::Partial { r: 1 });
        assert!(got.axis_parallel);
    }

    /// A broadcast hidden by the mapping: M_S kills the kernel direction.
    #[test]
    fn hidden_broadcast() {
        let theta = IMat::zeros(1, 2);
        let f = m(&[&[1, 0]]); // kernel = e2
        let m_s = m(&[&[1, 0]]); // kills e2
        let m_x = IMat::identity(1);
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        })
        .unwrap();
        assert_eq!(got.extent, Extent::Hidden);
        assert!(got.directions.is_none());
    }

    /// Sequential schedule kills the broadcast: ker θ ∩ ker F = 0.
    #[test]
    fn schedule_can_remove_broadcast() {
        let theta = m(&[&[0, 1]]); // j sequential
        let f = m(&[&[1, 0]]); // kernel = e2 — not in ker θ
        let m_s = IMat::identity(2);
        let m_x = IMat::identity(1);
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        });
        assert!(got.is_none());
    }

    /// Example 4 reduction: s += b[i,j] with M_S projecting to i: at fixed
    /// timestep the owner of s folds values from a row of processors.
    #[test]
    fn reduction_detected() {
        let theta = IMat::zeros(1, 2);
        let f = IMat::identity(2); // read b[i,j]
                                   // 1-D grid: the computing processor repeats along j while the
                                   // source owner of b[i,j] moves along j.
        let m_s = m(&[&[1, 0]]);
        let m_x = m(&[&[0, 1]]);
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: true,
        })
        .unwrap();
        assert_eq!(got.kind, MacroKind::Reduction);
        assert_eq!(got.extent, Extent::Total);
    }

    /// Example 3 gather: a[i] = f(src[i,j]) with everything identity-mapped
    /// on a 1-D grid: row j of sources funnels into owner i.
    #[test]
    fn gather_detected() {
        let theta = IMat::zeros(1, 2);
        let f = m(&[&[1, 0]]); // write a[i]
        let m_s = m(&[&[1, 0], &[0, 1]]); // statement on 2-D grid
        let m_x = IMat::zeros(2, 1); // all of `a` on one processor
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Write,
            stmt_is_reduction: false,
        })
        .unwrap();
        assert_eq!(got.kind, MacroKind::Gather);
        assert_eq!(got.extent, Extent::Total);
    }

    /// Scatter: the read-side mirror of the gather.
    #[test]
    fn scatter_detected() {
        let theta = IMat::zeros(1, 2);
        // Reading x[j] (owned along a collapsed axis) into S(i,j) where the
        // element index varies but the owner does not.
        let f = m(&[&[0, 1]]);
        let m_s = IMat::identity(2);
        let m_x = IMat::zeros(2, 1); // all of x on one processor row
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        })
        .unwrap();
        // Same element also goes to several processors (ker F escapes
        // M_S), so broadcast wins in preference order… unless the kernel
        // check fires first. Accept either collective here; the point is
        // it is not `None`.
        assert!(matches!(
            got.kind,
            MacroKind::Scatter | MacroKind::Broadcast
        ));
    }
}
