//! Message vectorization (§3.5 of the paper).
//!
//! A communication can be hoisted out of the (sequential) time loop and
//! sent as one large message when the data a processor reads does not
//! change across timesteps — formally, when the source location `M_a·F_a·I`
//! is a function of the destination processor `M_S·I` alone:
//! `M_a·F_a = X·M_S` for some `X`, i.e. **`ker M_S ⊆ ker (M_a·F_a)`**.
//! Replacing many small messages by one removes the per-message start-up
//! and latency overheads.

use rescomm_intlin::{kernel_subset, IMat};

/// `true` iff the communication `(M_S, M_x·F)` is vectorizable:
/// `ker M_S ⊆ ker (M_x·F)`.
///
/// ```
/// use rescomm_intlin::IMat;
/// use rescomm_macrocomm::vectorizable;
/// // Processor = i; source = 2i (time-invariant): hoistable.
/// let m_s = IMat::from_rows(&[&[0, 1]]);
/// assert!(vectorizable(&m_s, &IMat::from_rows(&[&[0, 2]])));
/// // Source moves with t: not hoistable.
/// assert!(!vectorizable(&m_s, &IMat::from_rows(&[&[1, 1]])));
/// ```
pub fn vectorizable(m_s: &IMat, m_x_f: &IMat) -> bool {
    assert_eq!(
        m_s.cols(),
        m_x_f.cols(),
        "vectorizable: both maps act on the iteration space"
    );
    kernel_subset(m_s, m_x_f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_intlin::IMat;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn identical_maps_vectorize() {
        let a = m(&[&[1, 0, 0], &[0, 1, 0]]);
        assert!(vectorizable(&a, &a));
    }

    #[test]
    fn source_ignoring_time_vectorizes() {
        // Iteration (t, i): processor = i, source = i too (t-invariant).
        let m_s = m(&[&[0, 1]]);
        let mxf = m(&[&[0, 2]]);
        assert!(vectorizable(&m_s, &mxf));
    }

    #[test]
    fn time_dependent_source_does_not_vectorize() {
        // Processor = i but the source moves with t: a shifting window.
        let m_s = m(&[&[0, 1]]);
        let mxf = m(&[&[1, 1]]);
        assert!(!vectorizable(&m_s, &mxf));
    }

    #[test]
    fn full_rank_processor_map_always_vectorizes() {
        // ker M_S = 0: trivially contained.
        let m_s = IMat::identity(3);
        let mxf = m(&[&[1, 2, 3], &[0, 0, 0], &[1, 1, 1]]);
        assert!(vectorizable(&m_s, &mxf));
    }

    #[test]
    fn factorization_exists_when_vectorizable() {
        // When ker M_S ⊆ ker(MxF), an X with MxF = X·M_S exists (check by
        // solving the equation).
        let m_s = m(&[&[1, 0, 0], &[0, 1, 1]]);
        let mxf = m(&[&[2, 0, 0], &[1, 1, 1]]);
        assert!(vectorizable(&m_s, &mxf));
        let fam = rescomm_intlin::solve_xf_eq_s(&mxf, &m_s).unwrap();
        assert_eq!(&fam.particular * &m_s, mxf);
    }
}
