//! Property tests for macro-communication detection and rotation.

use proptest::prelude::*;
use rescomm_intlin::{is_unimodular, IMat};
use rescomm_loopnest::AccessKind;
use rescomm_macrocomm::{
    axis_alignment_rotation, detect, is_axis_confined, vectorizable, Extent, MacroInput,
};

fn small_mat(rows: usize, cols: usize) -> impl Strategy<Value = IMat> {
    proptest::collection::vec(-3i64..=3, rows * cols)
        .prop_map(move |v| IMat::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Hermite rotation always confines any nonzero direction matrix
    /// to its rank's worth of axes, with a unimodular transform.
    #[test]
    fn rotation_always_confines(d in small_mat(2, 2)) {
        let (qinv, r) = axis_alignment_rotation(&d);
        prop_assert!(is_unimodular(&qinv));
        prop_assert_eq!(r, d.rank());
        let rotated = &qinv * &d;
        prop_assert!(is_axis_confined(&rotated), "not confined: {:?}", rotated);
        // Rows past the rank are zero.
        for i in r..2 {
            prop_assert!(rotated.row(i).iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn rotation_confines_3d(d in small_mat(3, 2)) {
        let (qinv, r) = axis_alignment_rotation(&d);
        let rotated = &qinv * &d;
        prop_assert!(is_axis_confined(&rotated));
        for i in r..3 {
            prop_assert!(rotated.row(i).iter().all(|&x| x == 0));
        }
    }

    /// Broadcast detection is invariant under unimodular rotation of the
    /// whole component: kind and extent never change; axis-parallelism
    /// becomes true after the canonical rotation.
    #[test]
    fn detection_invariant_under_rotation(
        f in small_mat(2, 3),
        m_s in small_mat(2, 3),
        shear in -3i64..=3,
    ) {
        let theta = IMat::zeros(1, 3);
        let m_x = IMat::identity(2);
        let input = MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        };
        let before = detect(input);
        let v = IMat::from_rows(&[&[1, shear], &[0, 1]]);
        let m_s2 = &v * &m_s;
        let m_x2 = &v * &m_x;
        let after = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s2,
            m_x: &m_x2,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        });
        match (before, after) {
            (None, None) => {}
            (Some(b), Some(a)) => {
                prop_assert_eq!(b.kind, a.kind);
                prop_assert_eq!(b.extent, a.extent, "extent changed under rotation");
            }
            (b, a) => prop_assert!(false, "detection flipped: {:?} vs {:?}", b.is_some(), a.is_some()),
        }
    }

    /// Vectorizability is decided by kernels, so scaling M_S by an
    /// invertible factor cannot change it.
    #[test]
    fn vectorizable_invariant_under_row_ops(
        m_s in small_mat(2, 3),
        mxf in small_mat(2, 3),
        shear in -3i64..=3,
    ) {
        let v = IMat::from_rows(&[&[1, shear], &[0, 1]]);
        let m_s2 = &v * &m_s;
        prop_assert_eq!(vectorizable(&m_s, &mxf), vectorizable(&m_s2, &mxf));
    }

    /// A full-rank access matrix with trivial kernel can never broadcast
    /// under a parallel schedule… unless the schedule contributes: with
    /// θ = 0 the kernel intersection is exactly ker F.
    #[test]
    fn square_nonsingular_reads_never_broadcast(f in small_mat(2, 2), m_s in small_mat(2, 2)) {
        prop_assume!(f.det() != 0);
        let theta = IMat::zeros(1, 2);
        let m_x = IMat::identity(2);
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        });
        if let Some(mc) = got {
            // ker F trivial ⟹ no broadcast geometry; only scatter/gather
            // shapes (through ker(M_x·F)) may fire, or a Hidden verdict.
            prop_assert!(
                mc.extent == Extent::Hidden
                    || mc.kind != rescomm_macrocomm::MacroKind::Broadcast,
                "broadcast from trivial kernel: {:?}",
                mc
            );
        }
    }

    /// Writes never produce broadcasts or reductions.
    #[test]
    fn writes_only_gather(f in small_mat(2, 3), m_s in small_mat(2, 3)) {
        let theta = IMat::zeros(1, 3);
        let m_x = IMat::identity(2);
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Write,
            stmt_is_reduction: false,
        });
        if let Some(mc) = got {
            prop_assert_eq!(mc.kind, rescomm_macrocomm::MacroKind::Gather);
        }
    }
}
