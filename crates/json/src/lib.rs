//! # rescomm-json — stable JSON emission and strict parsing
//!
//! Two halves, one byte discipline:
//!
//! * [`JsonDoc`] — the field-order-stable emitter behind every committed
//!   `BENCH_*.json` artifact (top-level scalars first, then named row
//!   arrays of flat objects, fields in insertion order, floats at fixed
//!   precision). It used to live in `rescomm-bench`; it moved down here
//!   so the service snapshots (`rescomm::serve`) and the machine-layer
//!   plan serialization share the exact same renderer.
//! * [`parse`] — the matching strict parser. It accepts exactly the
//!   JSON the emitter produces (plus standard escapes, exponents and
//!   nested values), reports malformed input with a 1-based line and
//!   column in the same style as the nest parser's `err_at`, **rejects
//!   duplicate object keys** instead of silently last-wins, and rejects
//!   trailing garbage after the top-level value. Hostile inputs (deep
//!   nesting, unterminated tokens, stray bytes) produce a [`JsonError`],
//!   never a panic — the mapping service feeds it raw network bytes.
//!
//! ```
//! use rescomm_json::{parse, JsonValue};
//! let v = parse(r#"{"bench": "service", "rows": [1, 2, 3]}"#).unwrap();
//! assert_eq!(v.get("bench").and_then(JsonValue::as_str), Some("service"));
//! assert_eq!(v.get("rows").and_then(JsonValue::as_array).map(|a| a.len()), Some(3));
//! assert!(parse("{\"a\": 1, \"a\": 2}").is_err(), "duplicate keys rejected");
//! assert!(parse("{} junk").is_err(), "trailing garbage rejected");
//! ```

use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Emission (moved verbatim from `rescomm_bench::json`).
// ---------------------------------------------------------------------------

/// A JSON value with explicit rendering. Floats carry their precision so
/// the artifact bytes do not depend on default float formatting.
#[derive(Debug, Clone)]
pub enum Val {
    /// An unsigned integer.
    U64(u64),
    /// A boolean.
    Bool(bool),
    /// A string (quoted and escaped on render).
    Str(String),
    /// A float rendered at a fixed number of decimal places.
    Fixed(f64, usize),
    /// Pre-rendered JSON spliced in verbatim (e.g. `[8, 4]`).
    Raw(String),
}

/// Fixed-precision float: `fixed(1.4128, 3)` renders as `1.413`.
pub fn fixed(x: f64, places: usize) -> Val {
    Val::Fixed(x, places)
}

/// Verbatim JSON fragment, e.g. a literal array or nested object.
pub fn raw(json: impl Into<String>) -> Val {
    Val::Raw(json.into())
}

impl From<u64> for Val {
    fn from(x: u64) -> Self {
        Val::U64(x)
    }
}
impl From<u32> for Val {
    fn from(x: u32) -> Self {
        Val::U64(u64::from(x))
    }
}
impl From<usize> for Val {
    fn from(x: usize) -> Self {
        Val::U64(x as u64)
    }
}
impl From<bool> for Val {
    fn from(x: bool) -> Self {
        Val::Bool(x)
    }
}
impl From<&str> for Val {
    fn from(x: &str) -> Self {
        Val::Str(x.to_string())
    }
}
impl From<String> for Val {
    fn from(x: String) -> Self {
        Val::Str(x)
    }
}

/// Escape `s` into `out` using the emitter's escape set.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_val(out: &mut String, v: &Val) {
    match v {
        Val::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Val::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        Val::Str(s) => escape_into(out, s),
        Val::Fixed(x, p) => {
            let _ = write!(out, "{x:.p$}");
        }
        Val::Raw(s) => out.push_str(s),
    }
}

enum Entry {
    Scalar(Val),
    Array(Vec<Vec<(&'static str, Val)>>),
}

/// An in-order JSON document builder (see the module docs for the exact
/// layout). Keys render in insertion order; [`JsonDoc::finish`] produces
/// the final string including the trailing newline.
#[derive(Default)]
pub struct JsonDoc {
    items: Vec<(&'static str, Entry)>,
}

impl JsonDoc {
    /// Empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a top-level scalar field.
    pub fn field(&mut self, key: &'static str, val: impl Into<Val>) -> &mut Self {
        self.items.push((key, Entry::Scalar(val.into())));
        self
    }

    /// Append a named array of flat row objects; `row` maps each item to
    /// its `(key, value)` columns, rendered in the order returned.
    pub fn rows<T>(
        &mut self,
        key: &'static str,
        items: &[T],
        row: impl Fn(&T) -> Vec<(&'static str, Val)>,
    ) -> &mut Self {
        self.items
            .push((key, Entry::Array(items.iter().map(row).collect())));
        self
    }

    /// Render the document.
    pub fn finish(&self) -> String {
        let mut j = String::from("{\n");
        for (i, (key, entry)) in self.items.iter().enumerate() {
            let _ = write!(j, "  \"{key}\": ");
            match entry {
                Entry::Scalar(v) => render_val(&mut j, v),
                Entry::Array(rows) => {
                    j.push_str("[\n");
                    for (r, fields) in rows.iter().enumerate() {
                        j.push_str("    {");
                        for (f, (k, v)) in fields.iter().enumerate() {
                            if f > 0 {
                                j.push_str(", ");
                            }
                            let _ = write!(j, "\"{k}\": ");
                            render_val(&mut j, v);
                        }
                        j.push('}');
                        j.push_str(if r + 1 < rows.len() { ",\n" } else { "\n" });
                    }
                    j.push_str("  ]");
                }
            }
            j.push_str(if i + 1 < self.items.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        j.push_str("}\n");
        j
    }

    /// Render and write the document to `path`, panicking with a
    /// diagnostic on failure (harness binaries treat I/O errors as
    /// fatal).
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.finish()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Parse error with a 1-based line number and column, formatted like the
/// nest parser's [`err_at`-style errors]: `line L, col C: message`.
///
/// [`err_at`-style errors]: https://docs.rs/ — see `rescomm_loopnest::parser::ParseError`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Line the error was detected on (1-based).
    pub line: usize,
    /// Column of the offending character (1-based).
    pub col: usize,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value. Objects keep their fields in source order (the
/// emitter's order is part of the committed-artifact contract, so the
/// parser must not shuffle it).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, fields in source order. Keys are unique ([`parse`]
    /// rejects duplicates).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integral value as `i64` (integers only — floats don't coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// Integral value as `u64`, when non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(x) if *x >= 0 => Some(*x as u64),
            _ => None,
        }
    }

    /// Numeric value as `f64` (both integers and floats coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(x) => Some(*x as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The field list, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(v) => Some(v),
            _ => None,
        }
    }

    /// Render back to compact JSON (one line, no spaces after `,`/`:`
    /// beyond a single separator — the canonical wire form of the
    /// service protocol). Integers and floats render via Rust's shortest
    /// round-trip formatting.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Int(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{}` round-trips f64 exactly; keep whole floats
                    // distinguishable from integers on the wire.
                    let s = format!("{x}");
                    let is_whole = !s.contains(['.', 'e', 'E']);
                    out.push_str(&s);
                    if is_whole {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    escape_into(out, k);
                    out.push_str(": ");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Nesting depth cap: hostile inputs must exhaust the parser's patience,
/// not the thread's stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    /// Remaining input.
    rest: std::str::Chars<'a>,
    /// One-character lookahead.
    peeked: Option<char>,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            rest: src.chars(),
            peeked: None,
            line: 1,
            col: 1,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        })
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.rest.next();
        }
        self.peeked
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.peeked = None;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), JsonError> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => self.err(format!("expected {want:?}, got {c:?}")),
            None => self.err(format!("expected {want:?}, got end of input")),
        }
    }

    fn keyword(&mut self, rest: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        for want in rest.chars() {
            match self.bump() {
                Some(c) if c == want => {}
                Some(c) => {
                    return self.err(format!("invalid literal: expected {want:?}, got {c:?}"))
                }
                None => return self.err("invalid literal: unexpected end of input"),
            }
        }
        Ok(value)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        // Opening quote already consumed by the caller.
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            match (self.bump(), self.bump()) {
                                (Some('\\'), Some('u')) => {
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return self.err("invalid low surrogate");
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                }
                                _ => return self.err("lone high surrogate"),
                            }
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return self.err("lone low surrogate");
                        } else {
                            hi
                        };
                        match char::from_u32(cp) {
                            Some(c) => s.push(c),
                            None => return self.err("invalid \\u escape"),
                        }
                    }
                    Some(c) => return self.err(format!("unknown escape \\{c}")),
                    None => return self.err("unterminated escape"),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return self.err("raw control character in string (escape it)")
                }
                Some(c) => s.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            match self.bump().and_then(|c| c.to_digit(16)) {
                Some(d) => v = v * 16 + d,
                None => return self.err("expected 4 hex digits after \\u"),
            }
        }
        Ok(v)
    }

    fn number(&mut self, first: char) -> Result<JsonValue, JsonError> {
        let mut text = String::new();
        text.push(first);
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    text.push(c);
                    self.bump();
                }
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    text.push(c);
                    self.bump();
                }
                _ => break,
            }
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(JsonValue::Float(f)),
            _ => self.err(format!("invalid number {text:?}")),
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.bump() {
            None => self.err("unexpected end of input"),
            Some('{') => {
                let mut fields: Vec<(String, JsonValue)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok(JsonValue::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let (kline, kcol) = (self.line, self.col);
                    self.expect('"').map_err(|e| JsonError {
                        msg: format!("expected object key: {}", e.msg),
                        ..e
                    })?;
                    let key = self.string()?;
                    if fields.iter().any(|(k, _)| *k == key) {
                        return Err(JsonError {
                            line: kline,
                            col: kcol,
                            msg: format!("duplicate key {key:?}"),
                        });
                    }
                    self.skip_ws();
                    self.expect(':')?;
                    let v = self.value(depth + 1)?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.bump() {
                        Some(',') => continue,
                        Some('}') => return Ok(JsonValue::Object(fields)),
                        Some(c) => return self.err(format!("expected ',' or '}}', got {c:?}")),
                        None => return self.err("unterminated object"),
                    }
                }
            }
            Some('[') => {
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.bump();
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(',') => continue,
                        Some(']') => return Ok(JsonValue::Array(items)),
                        Some(c) => return self.err(format!("expected ',' or ']', got {c:?}")),
                        None => return self.err("unterminated array"),
                    }
                }
            }
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('t') => self.keyword("rue", JsonValue::Bool(true)),
            Some('f') => self.keyword("alse", JsonValue::Bool(false)),
            Some('n') => self.keyword("ull", JsonValue::Null),
            Some(c @ ('-' | '0'..='9')) => self.number(c),
            Some(c) => self.err(format!("unexpected character {c:?}")),
        }
    }
}

/// Parse one JSON value from `src`, rejecting duplicate object keys and
/// any non-whitespace trailing garbage. Errors carry the 1-based line and
/// column where parsing stopped.
pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser::new(src);
    let v = p.value(0)?;
    p.skip_ws();
    if let Some(c) = p.peek() {
        return p.err(format!("trailing garbage after the value: {c:?}"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_committed_artifact_layout() {
        let mut doc = JsonDoc::new();
        doc.field("bench", "faults")
            .field("mesh", raw("[8, 4]"))
            .field("phases", 8u64)
            .field("dup_prob", fixed(0.02, 2));
        doc.rows("drop_sweep", &[(0u32, 1.0f64), (5, 1.4128)], |r| {
            vec![
                ("drop_pct", Val::from(r.0)),
                ("retry", Val::from(true)),
                ("inflation", fixed(r.1, 3)),
            ]
        });
        assert_eq!(
            doc.finish(),
            "{\n  \"bench\": \"faults\",\n  \"mesh\": [8, 4],\n  \"phases\": 8,\n  \
             \"dup_prob\": 0.02,\n  \"drop_sweep\": [\n    \
             {\"drop_pct\": 0, \"retry\": true, \"inflation\": 1.000},\n    \
             {\"drop_pct\": 5, \"retry\": true, \"inflation\": 1.413}\n  ]\n}\n"
        );
    }

    #[test]
    fn last_field_has_no_trailing_comma_and_strings_escape() {
        let mut doc = JsonDoc::new();
        doc.field("name", "a \"b\" \\ c");
        assert_eq!(doc.finish(), "{\n  \"name\": \"a \\\"b\\\" \\\\ c\"\n}\n");
    }

    #[test]
    fn empty_array_renders_flat() {
        let mut doc = JsonDoc::new();
        doc.field("n", 0u64);
        doc.rows("rows", &[] as &[u64], |_| vec![]);
        assert_eq!(doc.finish(), "{\n  \"n\": 0,\n  \"rows\": [\n  ]\n}\n");
    }

    #[test]
    fn parser_round_trips_the_emitter() {
        let mut doc = JsonDoc::new();
        doc.field("bench", "svc")
            .field("n", 3u64)
            .field("ratio", fixed(1.5, 3))
            .field("shape", raw("[8, 4]"));
        doc.rows("rows", &[(1u64, true), (2, false)], |r| {
            vec![("id", Val::from(r.0)), ("ok", Val::from(r.1))]
        });
        let v = parse(&doc.finish()).unwrap();
        assert_eq!(v.get("bench").and_then(JsonValue::as_str), Some("svc"));
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("ratio").and_then(JsonValue::as_f64), Some(1.5));
        let shape = v.get("shape").and_then(JsonValue::as_array).unwrap();
        assert_eq!(shape[0].as_i64(), Some(8));
        let rows = v.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("ok").and_then(JsonValue::as_bool), Some(false));
    }

    #[test]
    fn object_field_order_is_source_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn duplicate_keys_rejected_with_position() {
        let e = parse("{\"a\": 1,\n \"a\": 2}").unwrap_err();
        assert_eq!((e.line, e.col), (2, 2));
        assert!(e.msg.contains("duplicate key"));
        assert!(format!("{e}").contains("line 2, col 2"));
        // Nested objects are checked too.
        assert!(parse(r#"{"x": {"k": 1, "k": 2}}"#).is_err());
        // Same key in *different* objects is fine.
        assert!(parse(r#"[{"k": 1}, {"k": 2}]"#).is_ok());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse("{\"a\": 1}\nxyz").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("trailing garbage"));
        assert!(parse("[1, 2] 3").is_err());
        assert!(parse("1 2").is_err());
        // Trailing whitespace/newline is not garbage.
        assert!(parse("{\"a\": 1}\n  \n").is_ok());
    }

    #[test]
    fn malformed_inputs_error_with_line_and_col() {
        for (src, needle) in [
            ("", "end of input"),
            ("{", "expected object key"),
            ("{\"a\" 1}", "expected ':'"),
            ("{\"a\": }", "unexpected character"),
            ("[1, ", "end of input"),
            ("\"abc", "unterminated string"),
            ("tru", "invalid literal"),
            ("trua", "invalid literal"),
            ("{\"a\": 1,}", "expected object key"),
            ("01x", "trailing garbage"),
            ("-", "invalid number"),
            ("1.2.3", "invalid number"),
            ("\"\\q\"", "unknown escape"),
            ("\"\\ud800\"", "lone high surrogate"),
            ("nullx", "trailing garbage"),
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.msg.contains(needle),
                "{src:?}: expected {needle:?} in {:?}",
                e.msg
            );
            assert!(e.line >= 1 && e.col >= 1, "{src:?}: {e:?}");
        }
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        assert_eq!(parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Float(1000.0));
        // i64 boundary stays exact; beyond it becomes a float.
        assert_eq!(
            parse("9223372036854775807").unwrap(),
            JsonValue::Int(i64::MAX)
        );
        assert!(matches!(
            parse("92233720368547758080").unwrap(),
            JsonValue::Float(_)
        ));
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\t\u0041\u00e9""#).unwrap(),
            JsonValue::Str("a\"b\\c\nd\tAé".into())
        );
        // Surrogate pair.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            JsonValue::Str("😀".into())
        );
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.msg.contains("nesting"), "{e:?}");
    }

    #[test]
    fn render_round_trips() {
        let src = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5}}"#;
        let v = parse(src).unwrap();
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        // Rendering is canonical: parse(render(v)).render() == render(v).
        assert_eq!(parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn whole_floats_render_as_floats() {
        let v = JsonValue::Float(1000.0);
        let r = v.render();
        assert_eq!(parse(&r).unwrap(), v, "{r}");
    }
}
